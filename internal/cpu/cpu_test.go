package cpu

import (
	"errors"
	"testing"

	"repro/internal/arch"
	"repro/internal/arch/armv7"
	"repro/internal/mem"
	"repro/internal/pagetable"
)

// demandPager is a minimal kernel: on a translation fault it maps the page
// to a fresh anonymous frame; on a permission (COW write) fault it makes
// the PTE writable.
type demandPager struct {
	phys   *mem.PhysMem
	global bool // set the global bit + zygote domain on new mappings
	faults int
	fail   bool
}

func (d *demandPager) HandlePageFault(ctx *Context, va arch.VirtAddr, kind arch.AccessKind) error {
	d.faults++
	if d.fail {
		return errors.New("injected fault-handler failure")
	}
	pt := ctx.PT
	domain := armv7.DomainUser
	if d.global {
		domain = armv7.DomainZygote
	}
	if _, err := pt.EnsureLeafForVA(va, domain); err != nil {
		return err
	}
	if p := pt.PTEAt(va); p != nil && p.Valid() {
		// Permission fault: grant write (COW resolution stand-in).
		p.Flags |= arch.PTEWrite
		return nil
	}
	f, err := d.phys.Alloc(mem.FrameAnon)
	if err != nil {
		return err
	}
	flags := arch.PTEValid | arch.PTEUser | arch.PTEExec
	if kind == arch.AccessWrite {
		flags |= arch.PTEWrite
	}
	if d.global {
		flags |= arch.PTEGlobal
	}
	pt.Set(va, pagetable.PTE{Frame: f, Flags: flags})
	return nil
}

func newCtx(t *testing.T, phys *mem.PhysMem, id int, asid arch.ASID, dacr arch.DACR) *Context {
	t.Helper()
	pt, err := pagetable.New(phys, geoARM)
	if err != nil {
		t.Fatal(err)
	}
	return &Context{ID: id, Name: "test", PT: pt, ASID: asid, DACR: dacr, KernelTextPA: 0x3F000000}
}

func TestFetchDemandPaging(t *testing.T) {
	phys := mem.New(256)
	pager := &demandPager{phys: phys}
	c := New(pager, geoARM)
	ctx := newCtx(t, phys, 1, 1, armv7.StockDACR())
	c.ContextSwitch(ctx)

	if err := c.Fetch(0x8000); err != nil {
		t.Fatal(err)
	}
	if pager.faults != 1 {
		t.Errorf("faults = %d, want 1", pager.faults)
	}
	if ctx.Stats.SoftFaults != 1 {
		t.Errorf("SoftFaults = %d, want 1", ctx.Stats.SoftFaults)
	}
	// Second fetch of the same page: no fault, TLB hit.
	misses := ctx.Stats.ITLBMainMisses
	if err := c.Fetch(0x8004); err != nil {
		t.Fatal(err)
	}
	if pager.faults != 1 {
		t.Errorf("second fetch faulted")
	}
	if ctx.Stats.ITLBMainMisses != misses {
		t.Errorf("second fetch missed the TLB")
	}
	if ctx.Stats.Instructions != 2 {
		t.Errorf("Instructions = %d, want 2", ctx.Stats.Instructions)
	}
}

func TestFaultChargesCycles(t *testing.T) {
	phys := mem.New(256)
	c := New(&demandPager{phys: phys}, geoARM)
	ctx := newCtx(t, phys, 1, 1, armv7.StockDACR())
	c.ContextSwitch(ctx)
	before := ctx.Stats.Cycles
	if err := c.Fetch(0x8000); err != nil {
		t.Fatal(err)
	}
	if got := ctx.Stats.Cycles - before; got < uint64(c.Costs.SoftFault) {
		t.Errorf("faulting fetch charged %d cycles, want >= %d", got, c.Costs.SoftFault)
	}
	if ctx.Stats.KernelInstructions == 0 {
		t.Error("fault path should execute kernel instructions")
	}
}

func TestHandlerErrorPropagates(t *testing.T) {
	phys := mem.New(256)
	c := New(&demandPager{phys: phys, fail: true}, geoARM)
	ctx := newCtx(t, phys, 1, 1, armv7.StockDACR())
	c.ContextSwitch(ctx)
	if err := c.Fetch(0x8000); err == nil {
		t.Fatal("expected error from failing handler")
	}
}

func TestNoContext(t *testing.T) {
	c := New(nil, geoARM)
	if err := c.Fetch(0x8000); err == nil {
		t.Fatal("fetch with no context should fail")
	}
}

func TestCOWWriteFault(t *testing.T) {
	phys := mem.New(256)
	pager := &demandPager{phys: phys}
	c := New(pager, geoARM)
	ctx := newCtx(t, phys, 1, 1, armv7.StockDACR())
	c.ContextSwitch(ctx)

	if err := c.Read(0x8000); err != nil { // populate read-only
		t.Fatal(err)
	}
	if err := c.Write(0x8000); err != nil { // permission fault, then fixed
		t.Fatal(err)
	}
	if pager.faults != 2 {
		t.Errorf("faults = %d, want 2 (demand + COW)", pager.faults)
	}
	// The write retried successfully: PTE now writable.
	if p := ctx.PT.PTEAt(0x8000); p == nil || !p.Writable() {
		t.Error("PTE should be writable after COW fault")
	}
}

func TestContextSwitchFlushesMicroTLB(t *testing.T) {
	phys := mem.New(256)
	pager := &demandPager{phys: phys}
	c := New(pager, geoARM)
	a := newCtx(t, phys, 1, 1, armv7.StockDACR())
	b := newCtx(t, phys, 2, 2, armv7.StockDACR())
	c.ContextSwitch(a)
	if err := c.Fetch(0x8000); err != nil {
		t.Fatal(err)
	}
	c.ContextSwitch(b)
	c.ContextSwitch(a)
	// Micro-TLB was flushed, but the main TLB (ASID mode) still holds the
	// entry: the refetch must not walk or fault.
	misses, faults := a.Stats.ITLBMainMisses, a.Stats.SoftFaults
	if err := c.Fetch(0x8000); err != nil {
		t.Fatal(err)
	}
	if a.Stats.ITLBMainMisses != misses || a.Stats.SoftFaults != faults {
		t.Errorf("ASID-tagged main TLB entry should survive a context switch")
	}
}

func TestNoASIDFlushesMainTLB(t *testing.T) {
	phys := mem.New(256)
	pager := &demandPager{phys: phys}
	c := New(pager, geoARM)
	c.UseASID = false
	a := newCtx(t, phys, 1, 1, armv7.StockDACR())
	b := newCtx(t, phys, 2, 2, armv7.StockDACR())
	c.ContextSwitch(a)
	if err := c.Fetch(0x8000); err != nil {
		t.Fatal(err)
	}
	c.ContextSwitch(b)
	c.ContextSwitch(a)
	misses := a.Stats.ITLBMainMisses
	if err := c.Fetch(0x8000); err != nil {
		t.Fatal(err)
	}
	if a.Stats.ITLBMainMisses != misses+1 {
		t.Errorf("main TLB should have been flushed without ASIDs")
	}
}

func TestKeepGlobalOnFlush(t *testing.T) {
	// The shared-TLB kernel's no-ASID context switch spares global
	// entries: two zygote-like processes ping-ponging keep their shared
	// code translations resident despite the per-switch flush.
	phys := mem.New(256)
	pager := &demandPager{phys: phys, global: true}
	c := New(pager, geoARM)
	c.UseASID = false
	c.KeepGlobalOnFlush = true
	a := newCtx(t, phys, 1, 1, armv7.ZygoteDACR())
	b := newCtx(t, phys, 2, 2, armv7.ZygoteDACR())
	c.ContextSwitch(a)
	if err := c.Fetch(0x8000); err != nil {
		t.Fatal(err)
	}
	tab := a.PT.SlotForVA(0x8000).Table
	b.PT.AttachShared(geoARM.Slot(0x8000), tab, armv7.DomainZygote)
	c.ContextSwitch(b)
	if err := c.Fetch(0x8000); err != nil {
		t.Fatal(err)
	}
	if b.Stats.ITLBMainMisses != 0 {
		t.Errorf("global entry should survive the no-ASID switch, got %d misses",
			b.Stats.ITLBMainMisses)
	}
	// Without the flag, the same switch flushes everything.
	c2 := New(pager, geoARM)
	c2.UseASID = false
	a2 := newCtx(t, phys, 3, 3, armv7.ZygoteDACR())
	b2 := newCtx(t, phys, 4, 4, armv7.ZygoteDACR())
	c2.ContextSwitch(a2)
	if err := c2.Fetch(0x8000); err != nil {
		t.Fatal(err)
	}
	tab2 := a2.PT.SlotForVA(0x8000).Table
	b2.PT.AttachShared(geoARM.Slot(0x8000), tab2, armv7.DomainZygote)
	c2.ContextSwitch(b2)
	if err := c2.Fetch(0x8000); err != nil {
		t.Fatal(err)
	}
	if b2.Stats.ITLBMainMisses == 0 {
		t.Error("full flush should force a walk")
	}
}

func TestGlobalEntrySharedAcrossContexts(t *testing.T) {
	// Two zygote-like processes share one page table PTP whose PTEs are
	// global and in the zygote domain: the second process's fetch must hit
	// the TLB entry loaded by the first, despite a different ASID.
	phys := mem.New(256)
	pagerA := &demandPager{phys: phys, global: true}
	c := New(pagerA, geoARM)
	a := newCtx(t, phys, 1, 1, armv7.ZygoteDACR())
	b := newCtx(t, phys, 2, 2, armv7.ZygoteDACR())
	c.ContextSwitch(a)
	if err := c.Fetch(0x8000); err != nil {
		t.Fatal(err)
	}
	// Process b shares the same L2 table (as with a shared PTP).
	tab := a.PT.SlotForVA(0x8000).Table
	b.PT.AttachShared(geoARM.Slot(0x8000), tab, armv7.DomainZygote)

	c.ContextSwitch(b)
	if err := c.Fetch(0x8000); err != nil {
		t.Fatal(err)
	}
	if b.Stats.ITLBMainMisses != 0 {
		t.Errorf("global TLB entry should serve process b without a walk (misses=%d)", b.Stats.ITLBMainMisses)
	}
	if b.Stats.SoftFaults != 0 {
		t.Errorf("process b should not fault on the shared translation")
	}
}

func TestDomainFaultForNonZygote(t *testing.T) {
	// A non-zygote process trips over a global zygote-domain entry: the
	// domain-fault handler flushes it, and the retry walks the process's
	// own page table (here, demand-paging a private page).
	phys := mem.New(256)
	zygotePager := &demandPager{phys: phys, global: true}
	c := New(zygotePager, geoARM)
	zyg := newCtx(t, phys, 1, 1, armv7.ZygoteDACR())
	c.ContextSwitch(zyg)
	if err := c.Fetch(0x8000); err != nil {
		t.Fatal(err)
	}

	c.Handler = &demandPager{phys: phys} // private pager for the daemon
	daemon := newCtx(t, phys, 2, 2, armv7.StockDACR())
	c.ContextSwitch(daemon)
	if err := c.Fetch(0x8000); err != nil {
		t.Fatal(err)
	}
	if daemon.Stats.DomainFaults != 1 {
		t.Errorf("DomainFaults = %d, want 1", daemon.Stats.DomainFaults)
	}
	// The daemon got its own private translation.
	if p := daemon.PT.PTEAt(0x8000); p == nil || !p.Valid() || p.Global() {
		t.Errorf("daemon should have a private non-global PTE, got %+v", p)
	}
	// And the zygote's global entry was flushed from the TLB, so the
	// zygote re-walks (but does not re-fault: its PTE is still there).
	c.ContextSwitch(zyg)
	faults := zyg.Stats.SoftFaults
	if err := c.Fetch(0x8000); err != nil {
		t.Fatal(err)
	}
	if zyg.Stats.SoftFaults != faults {
		t.Errorf("zygote should not re-fault after domain flush")
	}
}

func TestStallAccounting(t *testing.T) {
	phys := mem.New(256)
	c := New(&demandPager{phys: phys}, geoARM)
	ctx := newCtx(t, phys, 1, 1, armv7.StockDACR())
	c.ContextSwitch(ctx)
	if err := c.Fetch(0x8000); err != nil {
		t.Fatal(err)
	}
	if ctx.Stats.ITLBStallCycles == 0 {
		t.Error("cold fetch should accrue ITLB stall cycles")
	}
	if ctx.Stats.ICacheStallCycles == 0 {
		t.Error("cold fetch should accrue I-cache stall cycles")
	}
	stalls := ctx.Stats.ITLBStallCycles
	icache := ctx.Stats.ICacheStallCycles
	if err := c.Fetch(0x8000); err != nil { // warm: same line, TLB hit
		t.Fatal(err)
	}
	if ctx.Stats.ITLBStallCycles != stalls {
		t.Error("warm fetch should not accrue ITLB stalls")
	}
	if ctx.Stats.ICacheStallCycles != icache {
		t.Error("warm fetch should not accrue I-cache stalls")
	}
}

func TestDataSideCounters(t *testing.T) {
	phys := mem.New(256)
	c := New(&demandPager{phys: phys}, geoARM)
	ctx := newCtx(t, phys, 1, 1, armv7.StockDACR())
	c.ContextSwitch(ctx)
	if err := c.Read(0x9000); err != nil {
		t.Fatal(err)
	}
	if ctx.Stats.DTLBMainMisses == 0 {
		t.Error("cold read should miss the data TLB")
	}
	if ctx.Stats.ITLBMainMisses != 0 {
		t.Error("data read must not touch instruction counters")
	}
}

func TestKernelExecPollutesICache(t *testing.T) {
	phys := mem.New(256)
	c := New(&demandPager{phys: phys}, geoARM)
	ctx := newCtx(t, phys, 1, 1, armv7.StockDACR())
	c.ContextSwitch(ctx)
	before := c.Caches.L1I.Stats().Misses
	c.KernelExec(1024)
	if c.Caches.L1I.Stats().Misses <= before {
		t.Error("kernel execution should miss (and fill) the I-cache")
	}
	if ctx.Stats.KernelInstructions != 256 {
		t.Errorf("KernelInstructions = %d, want 256", ctx.Stats.KernelInstructions)
	}
}

func TestTouch(t *testing.T) {
	phys := mem.New(256)
	c := New(&demandPager{phys: phys}, geoARM)
	ctx := newCtx(t, phys, 1, 1, armv7.StockDACR())
	c.ContextSwitch(ctx)
	if err := c.Touch(0xA000, false); err != nil {
		t.Fatal(err)
	}
	if err := c.Touch(0xB000, true); err != nil {
		t.Fatal(err)
	}
	if p := ctx.PT.PTEAt(0xB000); p == nil || !p.Writable() {
		t.Error("Touch(write) should produce a writable mapping")
	}
}

func TestContextSwitchSameContextFree(t *testing.T) {
	phys := mem.New(256)
	c := New(&demandPager{phys: phys}, geoARM)
	ctx := newCtx(t, phys, 1, 1, armv7.StockDACR())
	c.ContextSwitch(ctx)
	cycles := ctx.Stats.Cycles
	c.ContextSwitch(ctx)
	if ctx.Stats.Cycles != cycles {
		t.Error("re-switching to the same context must be free")
	}
	if ctx.Stats.ContextSwitchesIn != 1 {
		t.Errorf("ContextSwitchesIn = %d, want 1", ctx.Stats.ContextSwitchesIn)
	}
}

func TestFetchBlockClampsToPage(t *testing.T) {
	phys := mem.New(256)
	c := New(&demandPager{phys: phys}, geoARM)
	ctx := newCtx(t, phys, 1, 1, armv7.StockDACR())
	c.ContextSwitch(ctx)
	// 2000 instructions from 0x8FF0 would cross the page; the block must
	// clamp to the page without touching 0x9000.
	if err := c.FetchBlock(0x8FF0, 2000); err != nil {
		t.Fatal(err)
	}
	if p := ctx.PT.PTEAt(0x9000); p != nil && p.Valid() {
		t.Error("FetchBlock must not cross the page boundary")
	}
	if ctx.Stats.Instructions != 4 { // (0x1000-0xFF0)/4
		t.Errorf("Instructions = %d, want 4", ctx.Stats.Instructions)
	}
}

func TestFetchBlockZeroAndNoContext(t *testing.T) {
	phys := mem.New(256)
	c := New(&demandPager{phys: phys}, geoARM)
	if err := c.FetchBlock(0x8000, 0); err != nil {
		t.Errorf("zero-length block should be a no-op, got %v", err)
	}
	if err := c.FetchBlock(0x8000, 4); err == nil {
		t.Error("block with no context should fail")
	}
}

func TestChargeUser(t *testing.T) {
	phys := mem.New(256)
	c := New(&demandPager{phys: phys}, geoARM)
	ctx := newCtx(t, phys, 1, 1, armv7.StockDACR())
	c.ContextSwitch(ctx)
	before := ctx.Stats.Cycles
	c.ChargeUser(1000)
	if ctx.Stats.Instructions != 1000 {
		t.Errorf("Instructions = %d", ctx.Stats.Instructions)
	}
	if ctx.Stats.Cycles-before != 1000 {
		t.Errorf("cycles charged = %d", ctx.Stats.Cycles-before)
	}
	c.ChargeUser(0)
	c.ChargeUser(-5)
	if ctx.Stats.Instructions != 1000 {
		t.Error("non-positive charges must be no-ops")
	}
}

type countingSampler struct {
	user, kernel int
}

func (s *countingSampler) Sample(va arch.VirtAddr, kernel bool) {
	if kernel {
		s.kernel++
	} else {
		s.user++
	}
}

func TestSamplingRate(t *testing.T) {
	phys := mem.New(256)
	c := New(&demandPager{phys: phys}, geoARM)
	ctx := newCtx(t, phys, 1, 1, armv7.StockDACR())
	c.ContextSwitch(ctx)
	s := &countingSampler{}
	c.SampleEvery = 100
	c.Sampler = s
	if err := c.FetchBlock(0x8000, 256); err != nil { // one page visit
		t.Fatal(err)
	}
	c.ChargeUser(744)  // total user instructions: 1000
	c.KernelExec(2048) // 512 kernel instructions beyond the fault path
	total := int(ctx.Stats.Instructions + ctx.Stats.KernelInstructions)
	want := total / 100
	got := s.user + s.kernel
	if got < want-1 || got > want+1 {
		t.Errorf("samples = %d, want ~%d for %d instructions", got, want, total)
	}
	if s.kernel == 0 {
		t.Error("kernel instructions should be sampled too (fault path + KernelExec)")
	}
}

// geoARM is the geometry every legacy test drives; these tests pin
// ARMv7 short-descriptor behavior.
var geoARM = armv7.MMU().Geometry()

func TestFlushGlobalsOnSwitchIn(t *testing.T) {
	// On an architecture without domain protection the kernel marks
	// contexts outside the sharing set with FlushGlobals: switching one
	// in must drop the global entries the zygote-like processes loaded,
	// forcing the outsider to walk its own table.
	phys := mem.New(256)
	pager := &demandPager{phys: phys, global: true}
	c := New(pager, geoARM)
	a := newCtx(t, phys, 1, 1, armv7.StockDACR())
	c.ContextSwitch(a)
	if err := c.Fetch(0x8000); err != nil {
		t.Fatal(err)
	}
	daemon := newCtx(t, phys, 2, 2, armv7.StockDACR())
	daemon.FlushGlobals = true
	c.ContextSwitch(daemon)
	gv, gg := c.Main.Occupancy()
	if gg != 0 {
		t.Errorf("global entries must be flushed when a FlushGlobals context switches in (valid=%d global=%d)", gv, gg)
	}
	// Without the flag the global entry survives (ASID mode).
	c2 := New(pager, geoARM)
	a2 := newCtx(t, phys, 3, 3, armv7.StockDACR())
	c2.ContextSwitch(a2)
	if err := c2.Fetch(0x8000); err != nil {
		t.Fatal(err)
	}
	b2 := newCtx(t, phys, 4, 4, armv7.StockDACR())
	c2.ContextSwitch(b2)
	if _, gg2 := c2.Main.Occupancy(); gg2 == 0 {
		t.Error("global entry should survive an ordinary ASID switch")
	}
}
