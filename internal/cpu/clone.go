package cpu

import (
	"repro/internal/alloc"
	"repro/internal/cache"
	"repro/internal/obs"
	"repro/internal/tlb"
)

// CloneArenas batches the small per-core clone objects of one machine
// clone — TLB and cache headers. One instance serves every core of the
// machine; everything minted from it belongs to the cloned machine (see
// the alloc package for the lifetime rules).
type CloneArenas struct {
	TLBs   alloc.Arena[tlb.TLB]
	Caches alloc.Arena[cache.Cache]
}

// Clone returns a deep copy of this core for a checkpoint fork: TLBs and
// private caches are cloned over the already-cloned shared L2, the fault
// handler is replaced with the fork's kernel, and the current context is
// remapped through ctxs (the fork's Context for each source Context,
// built while cloning processes). ar may be nil for a plainly allocated
// clone. The Sampler is carried over as-is; checkpoints are captured
// before any sampling subscriber attaches.
func (c *CPU) Clone(handler FaultHandler, l2 *cache.Cache, bus *obs.Bus, ctxs map[*Context]*Context, ar *CloneArenas) *CPU {
	var tlbs *alloc.Arena[tlb.TLB]
	var caches *alloc.Arena[cache.Cache]
	if ar != nil {
		tlbs, caches = &ar.TLBs, &ar.Caches
	}
	d := *c
	d.bus = bus
	d.MicroI = c.MicroI.Clone(bus, tlbs)
	d.MicroD = c.MicroD.Clone(bus, tlbs)
	d.Main = c.Main.Clone(bus, tlbs)
	d.Caches = c.Caches.CloneWithL2(l2, bus, caches)
	d.Handler = handler
	if c.cur != nil {
		nc, ok := ctxs[c.cur]
		if !ok {
			panic("cpu: Clone: current context not in remap table")
		}
		d.cur = nc
	}
	return &d
}
