package cpu

import (
	"repro/internal/cache"
	"repro/internal/obs"
)

// Clone returns a deep copy of this core for a checkpoint fork: TLBs and
// private caches are cloned over the already-cloned shared L2, the fault
// handler is replaced with the fork's kernel, and the current context is
// remapped through ctxs (the fork's Context for each source Context,
// built while cloning processes). The Sampler is carried over as-is;
// checkpoints are captured before any sampling subscriber attaches.
func (c *CPU) Clone(handler FaultHandler, l2 *cache.Cache, bus *obs.Bus, ctxs map[*Context]*Context) *CPU {
	d := *c
	d.MicroI = c.MicroI.Clone(bus)
	d.MicroD = c.MicroD.Clone(bus)
	d.Main = c.Main.Clone(bus)
	d.Caches = c.Caches.CloneWithL2(l2, bus)
	d.Handler = handler
	if c.cur != nil {
		nc, ok := ctxs[c.cur]
		if !ok {
			panic("cpu: Clone: current context not in remap table")
		}
		d.cur = nc
	}
	return &d
}
