// Package cpu models one processor core of the evaluation platform: it
// drives instruction fetches and data accesses through the two-level TLB,
// the hardware page-table walker, and the cache hierarchy, charging cycles
// to the running context. It is the component that turns the memory
// management mechanisms of the vm and core packages into the performance
// numbers the paper reports — execution cycles, instruction-cache stall
// cycles, and instruction main-TLB stall cycles.
//
// The model follows the Cortex-A9: per-core micro-TLBs that are flushed on
// every context switch in front of a unified 128-entry main TLB, a
// hardware walker that loads PTEs through the L1 data cache and L2, and a
// soft page-fault cost calibrated to the ~2.25 microsecond (~2,700 cycle)
// LMbench lat_pagefault measurement on the Nexus 7.
package cpu

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/obs"
	"repro/internal/pagetable"
	"repro/internal/tlb"
)

// Costs is the cycle cost model.
type Costs struct {
	// BaseInstr is the pipelined cost of one instruction.
	BaseInstr int
	// MainTLBHit is the added latency of a micro-TLB miss that hits in
	// the main TLB.
	MainTLBHit int
	// WalkFixed is the walker's control overhead beyond its two memory
	// accesses.
	WalkFixed int
	// SoftFault is the fixed cost of a soft page fault: mode switch,
	// exception entry and exit. The fault path's instruction execution
	// is modeled separately via SoftFaultKernelText; together they land
	// near the ~2,700-cycle LMbench lat_pagefault measurement.
	SoftFault int
	// SoftFaultKernelText is the number of kernel-text bytes the fault
	// path executes (trap dispatch, region lookup, PTE population, rmap
	// bookkeeping); those fetches pollute the I-cache, which is how
	// page-fault elimination improves launch I-cache stall cycles.
	SoftFaultKernelText int
	// DomainFaultHandler is the cost of the domain-fault exception
	// path: read FSR/FAR, flush matching TLB entries, return.
	DomainFaultHandler int
	// ContextSwitch is the base scheduler cost of a context switch,
	// including the DACR load from the task control block.
	ContextSwitch int
	// TLBFlushAll is the added cost of a full main-TLB flush on a
	// context switch when ASIDs are not used.
	TLBFlushAll int
}

// DefaultCosts returns the calibrated cost model.
func DefaultCosts() Costs {
	return Costs{
		BaseInstr:           1,
		MainTLBHit:          2,
		WalkFixed:           10,
		SoftFault:           700,
		SoftFaultKernelText: 16384,
		DomainFaultHandler:  400,
		ContextSwitch:       900,
		TLBFlushAll:         60,
	}
}

// Stats accumulates per-context performance counters, mirroring the PMU
// and software counters read in the paper's evaluation.
type Stats struct {
	// Cycles is the total execution time attributed to the context.
	Cycles uint64
	// Instructions counts user instructions executed.
	Instructions uint64
	// KernelInstructions counts kernel instructions executed on behalf
	// of the context (fault handling, IPC kernel path).
	KernelInstructions uint64
	// ICacheStallCycles counts L1 instruction cache stall cycles.
	ICacheStallCycles uint64
	// DCacheStallCycles counts L1 data cache stall cycles.
	DCacheStallCycles uint64
	// ITLBStallCycles counts instruction main-TLB stall cycles: the
	// added latency of instruction-side micro-TLB misses, main-TLB
	// misses, and their page walks.
	ITLBStallCycles uint64
	// DTLBStallCycles is the data-side equivalent.
	DTLBStallCycles uint64
	// ITLBMainMisses counts instruction-side main TLB misses.
	ITLBMainMisses uint64
	// DTLBMainMisses counts data-side main TLB misses.
	DTLBMainMisses uint64
	// SoftFaults counts page faults taken.
	SoftFaults uint64
	// DomainFaults counts domain-fault exceptions taken.
	DomainFaults uint64
	// ContextSwitchesIn counts switches into this context.
	ContextSwitchesIn uint64
}

// Context is the hardware-visible execution context of one process: its
// translation table base, ASID, and domain access rights.
type Context struct {
	// ID is the owning process identifier (diagnostics only).
	ID int
	// Name is the owning process name (diagnostics only).
	Name string
	// PT is the process page table (translation table base register).
	PT *pagetable.PageTable
	// ASID is the address space identifier tagged into TLB entries.
	ASID arch.ASID
	// DACR is the domain access control value loaded on switch-in.
	DACR arch.DACR
	// KernelTextPA is the physical base of the kernel text this
	// context's kernel work fetches through the I-cache.
	KernelTextPA arch.PhysAddr
	// FlushGlobals marks a context whose address space does not hold
	// the shared global mappings: on architectures without domain
	// registers the kernel cannot let global TLB entries for shared
	// code survive into such a context, so switching one in must flush
	// the global entries the previous context may have loaded.
	FlushGlobals bool
	// Stats accumulates this context's counters.
	Stats Stats
}

// FaultHandler is the kernel entry point for translation and permission
// faults. It must establish a valid translation for va (or report failure)
// and return the number of kernel instructions the handling consumed
// beyond the fixed SoftFault trap cost.
type FaultHandler interface {
	HandlePageFault(ctx *Context, va arch.VirtAddr, kind arch.AccessKind) error
}

// CPU is one simulated core.
type CPU struct {
	// MicroI and MicroD are the instruction and data micro-TLBs,
	// flushed on every context switch.
	MicroI *tlb.TLB
	// MicroD is the data micro-TLB.
	MicroD *tlb.TLB
	// Main is the unified main TLB.
	Main *tlb.TLB
	// Caches is the cache hierarchy.
	Caches *cache.Hierarchy
	// Costs is the cycle cost model.
	Costs Costs
	// UseASID selects ASID-tagged TLB entries; when false the main TLB
	// is flushed on every context switch (the "Disabled ASID"
	// configuration of Figure 13).
	UseASID bool
	// KeepGlobalOnFlush makes the no-ASID context-switch flush spare
	// global entries: the shared-TLB kernel's translations for
	// zygote-preloaded code are identical in every zygote-like address
	// space and domain-protected against everyone else, so they can
	// survive the switch even without ASIDs.
	KeepGlobalOnFlush bool
	// Handler is the kernel fault handler.
	Handler FaultHandler
	// SampleEvery enables rate-based program-counter sampling: one
	// sample is delivered to Sampler every SampleEvery executed
	// instructions (0 disables sampling). This mirrors the perf
	// record methodology of Section 4.1.1.
	SampleEvery int
	// Sampler receives the samples.
	Sampler Sampler

	geo          arch.Geometry
	largeOffMask arch.VirtAddr
	cur          *Context
	now          uint64
	sinceSample  int
	lastFetchVA  arch.VirtAddr
	// bus is the machine's event bus, observed (never published to) by
	// the batched execution path: when a subscriber wants any event kind
	// the fast path could reorder or suppress, AccessBatch falls back to
	// the scalar reference loop so traced runs stay event-exact. Wired by
	// AttachBus alongside the TLBs and caches.
	bus *obs.Bus
}

// Sampler receives rate-based program-counter samples: the sampled
// virtual address and whether the core was executing kernel code.
type Sampler interface {
	Sample(va arch.VirtAddr, kernel bool)
}

// tick advances the sampling counter by n instructions executed at or
// near va and emits due samples.
func (c *CPU) tick(va arch.VirtAddr, kernel bool, n int) {
	if c.SampleEvery <= 0 || c.Sampler == nil {
		return
	}
	c.sinceSample += n
	for c.sinceSample >= c.SampleEvery {
		c.sinceSample -= c.SampleEvery
		c.Sampler.Sample(va, kernel)
	}
}

// New builds a core with the default Cortex-A9-like TLB and cache
// geometry: 32-entry micro-TLBs and a unified 128-entry main TLB. The
// MMU geometry fixes the large-page granularity the TLBs coalesce at
// and the page-table walk depth.
func New(handler FaultHandler, geo arch.Geometry) *CPU {
	return NewWithCaches(handler, cache.DefaultHierarchy(), geo)
}

// NewWithCaches builds a core over an existing cache hierarchy; SMP
// configurations pass per-core hierarchies sharing one L2.
func NewWithCaches(handler FaultHandler, caches *cache.Hierarchy, geo arch.Geometry) *CPU {
	return &CPU{
		MicroI:       tlb.New("uTLB-I", 32, geo.PagesPerLarge()),
		MicroD:       tlb.New("uTLB-D", 32, geo.PagesPerLarge()),
		Main:         tlb.New("mainTLB", 128, geo.PagesPerLarge()),
		Caches:       caches,
		Costs:        DefaultCosts(),
		UseASID:      true,
		Handler:      handler,
		geo:          geo,
		largeOffMask: geo.LargePageSize() - 1,
	}
}

// Geometry returns the MMU geometry the core was built for.
func (c *CPU) Geometry() arch.Geometry { return c.geo }

// Now returns the core's cycle counter.
func (c *CPU) Now() uint64 { return c.now }

// Current returns the running context, nil before the first switch.
func (c *CPU) Current() *Context { return c.cur }

// charge adds cycles to the global clock and the running context.
func (c *CPU) charge(cycles int) {
	c.now += uint64(cycles)
	if c.cur != nil {
		c.cur.Stats.Cycles += uint64(cycles)
	}
}

// ContextSwitch installs ctx as the running context, modeling the
// hardware effects: micro-TLBs are always flushed (Cortex-A9), the main
// TLB is flushed too when ASIDs are disabled, and the DACR is loaded from
// the task control block.
func (c *CPU) ContextSwitch(ctx *Context) {
	if ctx == c.cur {
		return
	}
	c.cur = ctx
	ctx.Stats.ContextSwitchesIn++
	cost := c.Costs.ContextSwitch
	c.MicroI.FlushAll()
	c.MicroD.FlushAll()
	if !c.UseASID {
		if c.KeepGlobalOnFlush {
			c.Main.FlushNonGlobal()
		} else {
			c.Main.FlushAll()
		}
		cost += c.Costs.TLBFlushAll
	}
	if ctx.FlushGlobals && (c.UseASID || c.KeepGlobalOnFlush) {
		// Without domain protection the global entries of the shared
		// mappings must not be visible in an address space that does
		// not hold them; the no-ASID full flush above already removed
		// them, so only the surviving-entry paths pay here.
		c.Main.FlushGlobal()
		cost += c.Costs.TLBFlushAll
	}
	c.charge(cost)
}

// Fetch executes one user instruction at va: translate through the
// instruction side, access the I-cache, and charge the cycles. A
// translation or permission fault invokes the kernel handler and retries.
func (c *CPU) Fetch(va arch.VirtAddr) error {
	return c.access(va, arch.AccessFetch)
}

// Read executes a user load at va through the data side.
func (c *CPU) Read(va arch.VirtAddr) error {
	return c.access(va, arch.AccessRead)
}

// Write executes a user store at va through the data side.
func (c *CPU) Write(va arch.VirtAddr) error {
	return c.access(va, arch.AccessWrite)
}

// FetchBlock models the execution of n sequential instructions starting
// at va, all within one page: the address is translated once, and the
// I-cache is accessed once per 32-byte line covered. This is the
// page-visit primitive the workload runner uses; it keeps the TLB and
// cache models exact at line granularity while charging n instructions.
func (c *CPU) FetchBlock(va arch.VirtAddr, n int) error {
	if n <= 0 {
		return nil
	}
	const instrSize = 4
	const lineSize = 32
	if int(va&arch.PageMask)+n*instrSize > arch.PageSize {
		n = (arch.PageSize - int(va&arch.PageMask)) / instrSize
	}
	ctx := c.cur
	if ctx == nil {
		return fmt.Errorf("cpu: fetch block at %#x with no context", va)
	}
	// Fast path: when the page already translates in the micro-TLB and no
	// sampler needs per-instruction attribution, the whole visit fuses —
	// the scalar path's two Lookup hits (the first instruction's access
	// and the block's explicit re-translation below) commit as one
	// weight-2 update, the cache references issue exactly as the scalar
	// path would issue them, and all costs are charged in one update.
	// Any other outcome (micro miss, fault, sampling) takes the scalar
	// path below, which remains the reference.
	if n > 1 && c.SampleEvery <= 0 {
		if e, slot, r := c.MicroI.Peek(va, ctx.ASID, ctx.DACR, arch.AccessFetch); r == tlb.Hit {
			c.MicroI.CommitRunHits(slot, 2, va, ctx.ASID, ctx.DACR)
			c.lastFetchVA = va
			ctx.Stats.Instructions += uint64(n)
			pa := c.physAddr(e.Frame(), e.Flags(), va)
			firstLine := int(va&arch.PageMask) / lineSize
			lastLine := (int(va&arch.PageMask) + n*instrSize - 1) / lineSize
			// One cache run covers every line of the block, the first
			// included: AccessRun at pa starts with pa's own line.
			stall := c.Caches.FetchRun(pa, lastLine-firstLine+1)
			ctx.Stats.ICacheStallCycles += uint64(stall)
			c.charge(n*c.Costs.BaseInstr + stall)
			return nil
		}
	}
	// First instruction takes the full translation path (and handles any
	// fault); the rest of the block reuses the translation.
	if err := c.access(va, arch.AccessFetch); err != nil {
		return err
	}
	rest := n - 1
	if rest <= 0 {
		return nil
	}
	ctx.Stats.Instructions += uint64(rest)
	c.charge(rest * c.Costs.BaseInstr)
	if c.SampleEvery > 0 {
		c.tick(va, false, rest)
	}
	e, r := c.MicroI.Lookup(va, ctx.ASID, ctx.DACR, arch.AccessFetch)
	if r != tlb.Hit {
		// The fetch above inserted the translation; a miss here means a
		// concurrent flush, which cannot happen in this single-core model.
		return fmt.Errorf("cpu: lost translation for block at %#x", va)
	}
	pageBase := c.physAddr(e.Frame(), e.Flags(), va) - arch.PhysAddr(va&arch.PageMask)
	firstLine := int(va&arch.PageMask) / lineSize
	lastLine := (int(va&arch.PageMask) + n*instrSize - 1) / lineSize
	if lines := lastLine - firstLine; lines > 0 {
		stall := c.Caches.FetchRun(pageBase+arch.PhysAddr((firstLine+1)*lineSize), lines)
		if stall > 0 {
			ctx.Stats.ICacheStallCycles += uint64(stall)
			c.charge(stall)
		}
	}
	return nil
}

// ChargeUser charges abstract user compute cycles (register-register
// work with no memory-system interaction) and the equivalent instruction
// count to the running context.
func (c *CPU) ChargeUser(instrs int) {
	if c.cur == nil || instrs <= 0 {
		return
	}
	c.cur.Stats.Instructions += uint64(instrs)
	c.charge(instrs * c.Costs.BaseInstr)
	if c.SampleEvery > 0 {
		c.tick(c.lastFetchVA, false, instrs)
	}
}

// Touch reads or writes va according to write.
func (c *CPU) Touch(va arch.VirtAddr, write bool) error {
	if write {
		return c.Write(va)
	}
	return c.Read(va)
}

func (c *CPU) access(va arch.VirtAddr, kind arch.AccessKind) error {
	ctx := c.cur
	if ctx == nil {
		return fmt.Errorf("cpu: access %#x with no context", va)
	}
	c.charge(c.Costs.BaseInstr)
	ctx.Stats.Instructions++
	if kind == arch.AccessFetch {
		c.lastFetchVA = va
	}
	if c.SampleEvery > 0 {
		c.tick(c.lastFetchVA, false, 1)
	}

	micro, stall := c.MicroI, &ctx.Stats.ITLBStallCycles
	mainMisses := &ctx.Stats.ITLBMainMisses
	if kind != arch.AccessFetch {
		micro, stall = c.MicroD, &ctx.Stats.DTLBStallCycles
		mainMisses = &ctx.Stats.DTLBMainMisses
	}

	const maxRetries = 8
	for attempt := 0; attempt < maxRetries; attempt++ {
		pa, ok, err := c.translate(va, kind, micro, stall, mainMisses)
		if err != nil {
			return err
		}
		if !ok {
			continue // fault handled; retry the translation
		}
		var lat int
		if kind == arch.AccessFetch {
			lat = c.Caches.Fetch(pa)
			ctx.Stats.ICacheStallCycles += uint64(lat - 1)
		} else {
			lat = c.Caches.Data(pa)
			ctx.Stats.DCacheStallCycles += uint64(lat - 1)
		}
		c.charge(lat - 1)
		return nil
	}
	return fmt.Errorf("cpu: %s at %#x did not resolve after %d fault retries (pid %d %q)",
		kind, va, maxRetries, ctx.ID, ctx.Name)
}

// translate resolves va to a physical address. ok=false means a fault was
// delivered to the kernel and the access must be retried.
func (c *CPU) translate(va arch.VirtAddr, kind arch.AccessKind, micro *tlb.TLB, stall *uint64, mainMisses *uint64) (arch.PhysAddr, bool, error) {
	ctx := c.cur
	e, r := micro.Lookup(va, ctx.ASID, ctx.DACR, kind)
	switch r {
	case tlb.Hit:
		return c.physAddr(e.Frame(), e.Flags(), va), true, nil
	case tlb.DomainFault:
		c.domainFault(va, micro)
		return 0, false, nil
	case tlb.PermFault:
		return 0, false, c.pageFault(va, kind, micro)
	}

	// Micro miss: probe the main TLB.
	c.charge(c.Costs.MainTLBHit)
	*stall += uint64(c.Costs.MainTLBHit)
	e, r = c.Main.Lookup(va, ctx.ASID, ctx.DACR, kind)
	switch r {
	case tlb.Hit:
		micro.Insert(va, ctx.ASID, e.Frame(), e.Flags(), e.Domain())
		return c.physAddr(e.Frame(), e.Flags(), va), true, nil
	case tlb.DomainFault:
		c.domainFault(va, micro)
		return 0, false, nil
	case tlb.PermFault:
		return 0, false, c.pageFault(va, kind, micro)
	}

	// Main miss: hardware page walk. The walker reads one entry per
	// table level through the cache hierarchy; with a shared PTP the
	// leaf PTE word has the same physical address in every process.
	*mainMisses++
	walk := c.Costs.WalkFixed
	pte, slot, fault, path := ctx.PT.Walk(va)
	for i := 0; i < path.N; i++ {
		walk += c.Caches.Walk(path.Addrs[i])
	}
	c.charge(walk)
	*stall += uint64(walk)

	if fault != arch.FaultNone {
		return 0, false, c.pageFault(va, kind, micro)
	}
	if !permits(pte.Flags, kind, ctx.DACR.Access(slot.Domain)) {
		if ctx.DACR.Access(slot.Domain) == arch.DomainNoAccess {
			// Architecturally a walk into a no-access domain aborts
			// with a domain fault rather than loading the TLB.
			c.domainFault(va, micro)
			return 0, false, nil
		}
		return 0, false, c.pageFault(va, kind, micro)
	}
	c.Main.Insert(va, ctx.ASID, pte.Frame, pte.Flags, slot.Domain)
	micro.Insert(va, ctx.ASID, pte.Frame, pte.Flags, slot.Domain)
	return c.physAddr(pte.Frame, pte.Flags, va), true, nil
}

// physAddr computes the physical address for a translated access,
// honoring large-page mappings (whose TLB entries and PTE replicas
// carry the base frame of the large block).
func (c *CPU) physAddr(frame arch.FrameNum, flags arch.PTEFlags, va arch.VirtAddr) arch.PhysAddr {
	if flags&arch.PTELarge != 0 {
		return arch.FrameAddr(frame) + arch.PhysAddr(va&c.largeOffMask)
	}
	return arch.FrameAddr(frame) + arch.PhysAddr(va&arch.PageMask)
}

func permits(flags arch.PTEFlags, kind arch.AccessKind, acc arch.DomainAccess) bool {
	if acc == arch.DomainManager {
		return true
	}
	if flags&arch.PTEUser == 0 {
		return false
	}
	switch kind {
	case arch.AccessFetch:
		return flags&arch.PTEExec != 0
	case arch.AccessWrite:
		return flags&arch.PTEWrite != 0
	default:
		return true
	}
}

// domainFault models the memory-abort exception taken when an access
// matches a TLB entry in a domain the DACR denies: the handler reads the
// FSR, finds a domain fault, and flushes all TLB entries matching the
// faulting address so the retry walks the process's own page table.
func (c *CPU) domainFault(va arch.VirtAddr, micro *tlb.TLB) {
	ctx := c.cur
	ctx.Stats.DomainFaults++
	micro.FlushVA(va)
	c.Main.FlushVA(va)
	c.charge(c.Costs.DomainFaultHandler)
	ctx.Stats.KernelInstructions += uint64(c.Costs.DomainFaultHandler / 2)
}

// pageFault models a soft page fault: trap into the kernel, run the fault
// path (whose kernel-text fetches pollute the I-cache), and let the VM
// system establish the translation.
func (c *CPU) pageFault(va arch.VirtAddr, kind arch.AccessKind, micro *tlb.TLB) error {
	ctx := c.cur
	if c.Handler == nil {
		return fmt.Errorf("cpu: unhandled %s page fault at %#x (pid %d %q)", kind, va, ctx.ID, ctx.Name)
	}
	ctx.Stats.SoftFaults++
	c.charge(c.Costs.SoftFault)
	c.KernelExec(c.Costs.SoftFaultKernelText)
	// The translation that failed the permission check must not be used
	// again after the kernel fixes the PTE.
	micro.FlushVA(va)
	c.Main.FlushVA(va)
	if err := c.Handler.HandlePageFault(ctx, va, kind); err != nil {
		return fmt.Errorf("cpu: page fault at %#x (pid %d %q): %w", va, ctx.ID, ctx.Name, err)
	}
	return nil
}

// KernelExec models the execution of kernel code on behalf of the current
// context: bytes of kernel text are fetched through the I-cache (from the
// context's kernel-text physical window, shared by all processes) and the
// stall cycles and kernel instruction counts are charged.
func (c *CPU) KernelExec(bytes int) {
	ctx := c.cur
	if ctx == nil || bytes <= 0 {
		return
	}
	const instrSize = 4
	const lineSize = 32
	n := bytes / instrSize
	ctx.Stats.KernelInstructions += uint64(n)
	c.charge(n * c.Costs.BaseInstr)
	if c.SampleEvery > 0 {
		c.tick(kernelSpaceVA, true, n)
	}
	stall := c.Caches.FetchRun(ctx.KernelTextPA, (bytes+lineSize-1)/lineSize)
	if stall > 0 {
		ctx.Stats.ICacheStallCycles += uint64(stall)
		c.charge(stall)
	}
}

// ChargeKernel charges raw kernel cycles (and the equivalent instruction
// count) without cache modeling, for fixed-cost kernel paths such as
// system-call entry or scheduler bookkeeping.
func (c *CPU) ChargeKernel(cycles int) {
	if c.cur != nil {
		c.cur.Stats.KernelInstructions += uint64(cycles)
	}
	c.charge(cycles)
	if c.SampleEvery > 0 {
		c.tick(kernelSpaceVA, true, cycles)
	}
}

// kernelSpaceVA is the pseudo program counter reported for kernel-mode
// samples; Linux/ARM places the kernel above this split.
const kernelSpaceVA = arch.VirtAddr(0xC0000000)
