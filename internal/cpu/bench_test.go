package cpu

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/arch/armv7"
	"repro/internal/mem"
	"repro/internal/pagetable"
)

// benchContext builds a core and a context whose page table maps `pages`
// consecutive instruction pages starting at base, so every translation
// resolves without faulting.
func benchContext(b *testing.B, pages int) (*CPU, *Context, arch.VirtAddr) {
	b.Helper()
	phys := mem.New(1024)
	pt, err := pagetable.New(phys, geoARM)
	if err != nil {
		b.Fatal(err)
	}
	const base = arch.VirtAddr(0x10000000)
	for i := 0; i < pages; i++ {
		va := base + arch.VirtAddr(i)<<arch.PageShift
		if _, err := pt.EnsureLeafForVA(va, armv7.DomainUser); err != nil {
			b.Fatal(err)
		}
		pt.Set(va, pagetable.PTE{
			Frame: arch.FrameNum(0x40000 + i),
			Flags: arch.PTEValid | arch.PTEUser | arch.PTEExec,
		})
	}
	c := New(nil, geoARM)
	ctx := &Context{ID: 1, Name: "bench", PT: pt, ASID: 1, DACR: armv7.StockDACR()}
	c.ContextSwitch(ctx)
	return c, ctx, base
}

// BenchmarkTranslateWalk measures the full miss pipeline: micro-TLB miss,
// main-TLB miss, two page-walk cache references, and both TLB inserts.
// The working set (256 pages) is twice the main TLB, so every access
// walks.
func BenchmarkTranslateWalk(b *testing.B) {
	c, _, base := benchContext(b, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		va := base + arch.VirtAddr(i&255)<<arch.PageShift
		if err := c.Fetch(va); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTranslateHit measures the all-hit fast path: the same 16-page
// working set stays resident in the micro-TLB and L1I.
func BenchmarkTranslateHit(b *testing.B) {
	c, _, base := benchContext(b, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		va := base + arch.VirtAddr(i&15)<<arch.PageShift
		if err := c.Fetch(va); err != nil {
			b.Fatal(err)
		}
	}
}
