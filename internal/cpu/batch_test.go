package cpu

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/arch"
	"repro/internal/arch/armv7"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/pagetable"
)

// The scalar-vs-batched differential: two identical machines execute the
// same randomized reference program, one through the per-reference entry
// points (Fetch/Read/Write/FetchBlock), the other through AccessBatch,
// and every piece of architectural state must come out bit-identical.
// The program mixes strides (zero, sub-line, page, multi-page, negative,
// larger than a large page), large-page mappings, demand faults, runs
// overflowing the mapped region, context switches, and empty runs.

const (
	// diffLargeVA is a large-page-aligned window backed by SetLarge
	// mappings; fused runs across it coalesce in the TLB at large-page
	// granularity. ARMv7 large pages are 64KB, so 1GB is aligned.
	diffLargeVA = arch.VirtAddr(0x40000000)
	// diffLargeBlocks large pages back the window.
	diffLargeBlocks = 4
)

// diffMachine is one side of the differential: a core, its demand pager,
// three contexts with distinct ASIDs, and (optionally) a recorded event
// stream.
type diffMachine struct {
	cpu    *CPU
	pager  *demandPager
	ctxs   []*Context
	events []obs.Event
}

func newDiffMachine(t *testing.T, observe bool) *diffMachine {
	t.Helper()
	phys := mem.New(1 << 18)
	pager := &demandPager{phys: phys}
	m := &diffMachine{cpu: New(pager, geoARM), pager: pager}
	ppl := geoARM.PagesPerLarge()
	span := arch.VirtAddr(ppl * arch.PageSize)
	for i := 1; i <= 3; i++ {
		ctx := newCtx(t, phys, i, arch.ASID(i), armv7.StockDACR())
		// Premap the large window: each block one large page over a
		// fabricated aligned physical block, executable and writable, so
		// fetches, reads, and writes all hit without faulting.
		for blk := 0; blk < diffLargeBlocks; blk++ {
			va := diffLargeVA + arch.VirtAddr(blk)*span
			if _, err := ctx.PT.EnsureLeafForVA(va, armv7.DomainUser); err != nil {
				t.Fatal(err)
			}
			frame := arch.FrameNum((1 << 17) + (i*diffLargeBlocks+blk)*ppl)
			ctx.PT.SetLarge(va, frame,
				arch.PTEValid|arch.PTEUser|arch.PTEExec|arch.PTEWrite, 0)
		}
		m.ctxs = append(m.ctxs, ctx)
	}
	if observe {
		bus := obs.NewBus()
		bus.Subscribe(obs.ObserverFunc(func(ev obs.Event) {
			m.events = append(m.events, ev)
		}), obs.EvTLBInsert, obs.EvTLBEvict, obs.EvCacheFill, obs.EvPageFault)
		m.cpu.AttachBus(bus)
	}
	m.cpu.ContextSwitch(m.ctxs[0])
	return m
}

// diffOp is one step of the program: a context switch (ctx >= 0) or a
// batch of runs issued back to back.
type diffOp struct {
	ctx  int
	runs []arch.RefRun
}

// buildDiffProgram generates the randomized program — pure data, so both
// machines execute exactly the same references.
func buildDiffProgram(rng *rand.Rand, minRefs int) (prog []diffOp, refs int) {
	pageStride := arch.VirtAddr(arch.PageSize)
	largeSpan := arch.VirtAddr(diffLargeBlocks * geoARM.PagesPerLarge() * arch.PageSize)
	strides := []arch.VirtAddr{
		0, 4, 64, 1024,
		pageStride, 3 * pageStride,
		geoARM.LargePageSize() + pageStride, // larger than a large page
		^arch.VirtAddr(4) + 1, -pageStride,  // descending (VirtAddr wraps)
	}
	newRun := func() arch.RefRun {
		var va arch.VirtAddr
		switch p := rng.Intn(100); {
		case p < 35:
			// Demand-paged low region: faults on first touch, COW-style
			// write-permission faults after a read maps a page read-only.
			va = arch.VirtAddr(rng.Intn(1<<20)) &^ 3
		case p < 65:
			// Inside the premapped large window: the fused path's best case.
			va = diffLargeVA + arch.VirtAddr(rng.Intn(int(largeSpan)))&^3
		case p < 80:
			// Near the end of the window, so the run overflows the mapped
			// region into demand-paged territory mid-run.
			va = diffLargeVA + largeSpan - 2*pageStride + arch.VirtAddr(rng.Intn(arch.PageSize))&^3
		default:
			// A second demand-paged region far from the others.
			va = 0x60000000 + arch.VirtAddr(rng.Intn(1<<20))&^3
		}
		stride := strides[rng.Intn(len(strides))]
		count := rng.Intn(70) - 3 // sometimes zero or negative: empty runs
		if (stride > 2*pageStride && stride < arch.VirtAddr(0)-2*pageStride) && count > 20 {
			count = 20 // bound the page span of huge-stride runs
		}
		kind := []arch.AccessKind{arch.AccessFetch, arch.AccessRead, arch.AccessWrite}[rng.Intn(3)]
		block := 0
		if kind == arch.AccessFetch && rng.Intn(2) == 0 {
			block = []int{4, 16, 64}[rng.Intn(3)]
		}
		return arch.RefRun{VA: va, Stride: stride, Count: count, Kind: kind, Block: block}
	}
	for refs < minRefs {
		if rng.Intn(100) < 8 {
			prog = append(prog, diffOp{ctx: rng.Intn(3)})
			continue
		}
		op := diffOp{ctx: -1}
		for i, n := 0, 1+rng.Intn(3); i < n; i++ {
			r := newRun()
			if r.Count > 0 {
				refs += r.Count
			}
			op.runs = append(op.runs, r)
		}
		prog = append(prog, op)
	}
	return prog, refs
}

// scalarRun executes one run through the public per-reference entry
// points — the independent restatement of the run semantics AccessBatch
// must reproduce.
func scalarRun(t *testing.T, c *CPU, r arch.RefRun) {
	t.Helper()
	va := r.VA
	for i := 0; i < r.Count; i++ {
		var err error
		if r.Kind == arch.AccessFetch && r.Block > 1 {
			err = c.FetchBlock(va, r.Block)
		} else {
			switch r.Kind {
			case arch.AccessFetch:
				err = c.Fetch(va)
			case arch.AccessRead:
				err = c.Read(va)
			default:
				err = c.Write(va)
			}
		}
		if err != nil {
			t.Fatalf("scalar %v at %#x: %v", r.Kind, va, err)
		}
		va += r.Stride
	}
}

func (m *diffMachine) snapshot() Snapshot {
	return m.cpu.SnapshotState(func(c *Context) int32 { return int32(c.ID) })
}

func runDifferential(t *testing.T, observe bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(0x5eed))
	prog, refs := buildDiffProgram(rng, 10000)
	if refs < 10000 {
		t.Fatalf("program has %d references, want >= 10000", refs)
	}

	a := newDiffMachine(t, observe) // scalar reference
	b := newDiffMachine(t, observe) // batched

	for opIdx, op := range prog {
		if op.ctx >= 0 {
			a.cpu.ContextSwitch(a.ctxs[op.ctx])
			b.cpu.ContextSwitch(b.ctxs[op.ctx])
			continue
		}
		for _, r := range op.runs {
			scalarRun(t, a.cpu, r)
		}
		if err := b.cpu.AccessBatch(op.runs); err != nil {
			t.Fatalf("op %d: AccessBatch: %v", opIdx, err)
		}
		// Per-op stats comparison pinpoints the first diverging operation.
		for j := range a.ctxs {
			if !reflect.DeepEqual(a.ctxs[j].Stats, b.ctxs[j].Stats) {
				t.Fatalf("op %d (runs %+v): ctx %d stats diverge\nscalar:  %+v\nbatched: %+v",
					opIdx, op.runs, j+1, a.ctxs[j].Stats, b.ctxs[j].Stats)
			}
		}
	}

	if a.pager.faults != b.pager.faults {
		t.Errorf("page faults diverge: scalar %d, batched %d", a.pager.faults, b.pager.faults)
	}
	sa, sb := a.snapshot(), b.snapshot()
	if !reflect.DeepEqual(sa, sb) {
		t.Errorf("core snapshots diverge\nscalar:  %+v\nbatched: %+v", sa, sb)
	}
	if l2a, l2b := a.cpu.Caches.L2.SnapshotState(), b.cpu.Caches.L2.SnapshotState(); !reflect.DeepEqual(l2a, l2b) {
		t.Error("L2 snapshots diverge")
	}
	if observe && !reflect.DeepEqual(a.events, b.events) {
		t.Errorf("event streams diverge: scalar %d events, batched %d events",
			len(a.events), len(b.events))
	}
}

// TestScalarBatchedDifferential drives >= 10k randomized references
// through both execution paths. Without an observer the fused fast path
// handles hit spans; with one, AccessBatch must fall back to the scalar
// loop and reproduce the exact event stream.
func TestScalarBatchedDifferential(t *testing.T) {
	t.Run("fused", func(t *testing.T) { runDifferential(t, false) })
	t.Run("observed", func(t *testing.T) { runDifferential(t, true) })
}

// TestAccessBatchEmptyRuns: zero and negative counts are skipped without
// touching any state, matching the scalar loop's empty iteration.
func TestAccessBatchEmptyRuns(t *testing.T) {
	phys := mem.New(256)
	pager := &demandPager{phys: phys}
	c := New(pager, geoARM)
	ctx := newCtx(t, phys, 1, 1, armv7.StockDACR())
	c.ContextSwitch(ctx)
	before := ctx.Stats // the switch itself charges cycles; runs must add nothing
	err := c.AccessBatch([]arch.RefRun{
		{VA: 0x8000, Stride: 4, Count: 0, Kind: arch.AccessFetch},
		{VA: 0x8000, Stride: 4, Count: -12, Kind: arch.AccessWrite},
		{VA: 0x8000, Count: -1, Kind: arch.AccessFetch, Block: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Stats != before || pager.faults != 0 {
		t.Errorf("empty runs touched state: %+v, faults %d", ctx.Stats, pager.faults)
	}
}

// TestAccessBatchNoContext: every run shape must report the no-context
// error the scalar entry points report.
func TestAccessBatchNoContext(t *testing.T) {
	c := New(nil, geoARM)
	for _, r := range []arch.RefRun{
		{VA: 0x8000, Count: 1, Kind: arch.AccessFetch},
		{VA: 0x8000, Count: 4, Kind: arch.AccessRead, Stride: 4},
		{VA: 0x8000, Count: 2, Kind: arch.AccessFetch, Block: 16},
	} {
		if err := c.AccessBatch([]arch.RefRun{r}); err == nil {
			t.Errorf("run %+v with no context: want error", r)
		}
	}
}

// TestFetchBlockPageBoundary: a block starting near the end of a page
// must clamp at the boundary on the fused fast path exactly as on the
// scalar path — same instruction count, same stall accounting, and no
// touch of the next page.
func TestFetchBlockPageBoundary(t *testing.T) {
	build := func(sampleEvery int) (*CPU, *Context) {
		phys := mem.New(256)
		c := New(&demandPager{phys: phys}, geoARM)
		c.SampleEvery = sampleEvery // > 0 disables the fused block path (nil sampler: no ticks)
		ctx := newCtx(t, phys, 1, 1, armv7.StockDACR())
		c.ContextSwitch(ctx)
		return c, ctx
	}
	fused, fctx := build(0)
	scalar, sctx := build(1)

	const va = arch.VirtAddr(0x8000 + arch.PageSize - 3*4) // 3 instruction slots left
	for _, m := range []*CPU{fused, scalar} {
		if err := m.Fetch(0x8000); err != nil { // warm the page so the fused path engages
			t.Fatal(err)
		}
		if err := m.FetchBlock(va, 100); err != nil {
			t.Fatal(err)
		}
	}
	if fctx.Stats.Instructions != 1+3 {
		t.Errorf("fused Instructions = %d, want 4 (1 warm + 3 clamped)", fctx.Stats.Instructions)
	}
	if !reflect.DeepEqual(fctx.Stats, sctx.Stats) {
		t.Errorf("fused and scalar block visits diverge\nfused:  %+v\nscalar: %+v", fctx.Stats, sctx.Stats)
	}
	if p := fctx.PT.PTEAt(0x9000); p != nil && p.Valid() {
		t.Error("clamped block crossed into the next page")
	}
	snap := func(c *CPU) Snapshot { return c.SnapshotState(func(*Context) int32 { return 1 }) }
	if !reflect.DeepEqual(snap(fused), snap(scalar)) {
		t.Error("fused and scalar block visits leave different core state")
	}
}

// benchMachine builds a warmed single-context machine whose large window
// is fully resident, so benchmarks measure the hit path.
func benchMachine(b *testing.B) *CPU {
	b.Helper()
	phys := mem.New(1 << 18)
	c := New(&demandPager{phys: phys}, geoARM)
	pt, err := pagetable.New(phys, geoARM)
	if err != nil {
		b.Fatal(err)
	}
	ctx := &Context{ID: 1, Name: "bench", PT: pt, ASID: 1, DACR: armv7.StockDACR(), KernelTextPA: 0x3F000000}
	ppl := geoARM.PagesPerLarge()
	span := arch.VirtAddr(ppl * arch.PageSize)
	for blk := 0; blk < diffLargeBlocks; blk++ {
		va := diffLargeVA + arch.VirtAddr(blk)*span
		if _, err := ctx.PT.EnsureLeafForVA(va, armv7.DomainUser); err != nil {
			b.Fatal(err)
		}
		ctx.PT.SetLarge(va, arch.FrameNum((1<<17)+blk*ppl),
			arch.PTEValid|arch.PTEUser|arch.PTEExec|arch.PTEWrite, 0)
	}
	c.ContextSwitch(ctx)
	return c
}

func benchRuns(kind arch.AccessKind, block int) []arch.RefRun {
	return []arch.RefRun{{
		VA:     diffLargeVA,
		Stride: arch.VirtAddr(arch.PageSize),
		Count:  diffLargeBlocks * geoARM.PagesPerLarge(),
		Kind:   kind,
		Block:  block,
	}}
}

func benchAccessBatch(b *testing.B, kind arch.AccessKind, block int) {
	c := benchMachine(b)
	runs := benchRuns(kind, block)
	if err := c.AccessBatch(runs); err != nil { // warm TLB and caches
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.AccessBatch(runs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAccessBatchFetch(b *testing.B) { benchAccessBatch(b, arch.AccessFetch, 0) }
func BenchmarkAccessBatchWrite(b *testing.B) { benchAccessBatch(b, arch.AccessWrite, 0) }
func BenchmarkAccessBatchBlock(b *testing.B) { benchAccessBatch(b, arch.AccessFetch, 16) }

// BenchmarkAccessBatchScalar is the same page sweep through the scalar
// entry points — the before/after pair for the batched engine.
func BenchmarkAccessBatchScalar(b *testing.B) {
	c := benchMachine(b)
	runs := benchRuns(arch.AccessFetch, 0)
	if err := c.AccessBatch(runs); err != nil {
		b.Fatal(err)
	}
	r := runs[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		va := r.VA
		for j := 0; j < r.Count; j++ {
			if err := c.Fetch(va); err != nil {
				b.Fatal(err)
			}
			va += r.Stride
		}
	}
}
