// Batched reference-stream execution: CPU.AccessBatch consumes
// run-length-encoded reference streams (arch.RefRun) with a fused fast
// path — spans of TLB-hit, cache-hit iterations resolved inside one loop
// with their instruction counts and stall cycles accumulated in locals
// and flushed once per span — falling out to the scalar access path for
// any reference the fast path cannot prove equivalent: a TLB miss, a
// fault of any kind, an attached sampler, or an obs subscriber wanting
// the event kinds batching could perturb.
//
// The equivalence argument, in full:
//
//   - TLB hits and cache hits publish no events and read no global state,
//     so their bookkeeping commutes: k hit iterations may be summed and
//     committed in one update (tlb.CommitRunHits, cache.AccessRun) with
//     bit-identical final state to k scalar iterations.
//   - Everything else — TLB misses and inserts, page walks, cache fills,
//     faults, permission checks — runs through the unchanged scalar
//     access path, one reference at a time, with all accumulated fast-path
//     state flushed first, so counters, events, and handler interactions
//     occur exactly as the scalar loop would produce them.
//   - Per-instruction sampling (SampleEvery > 0) attributes samples to
//     individual references; the batch path cannot replicate that
//     attribution and defers entirely to the scalar loop.
//   - With an obs subscriber wanting TLB or cache or fault events, runs
//     also execute scalar. The fast path's hit spans would in fact
//     publish nothing either way, but bypassing keeps observed runs
//     trivially event-exact rather than exact-by-argument.
//
// The scalar loop survives unchanged (expandRun) as the reference for
// the randomized scalar-vs-batched differential test.

package cpu

import (
	"repro/internal/arch"
	"repro/internal/obs"
)

// batchable reports whether the fused fast path may execute runs at all
// in the core's current configuration. Sampling needs per-reference
// program-counter attribution, and a subscriber to translation, cache,
// or fault events gets the scalar loop so every observed run is
// event-exact by construction.
func (c *CPU) batchable() bool {
	if c.SampleEvery > 0 {
		return false
	}
	return !(c.bus.Wants(obs.EvTLBInsert) || c.bus.Wants(obs.EvTLBEvict) ||
		c.bus.Wants(obs.EvTLBFlush) || c.bus.Wants(obs.EvCacheFill) ||
		c.bus.Wants(obs.EvCacheEvict) || c.bus.Wants(obs.EvPageFault))
}

// AccessBatch executes a reference stream: exactly equivalent to issuing
// every reference of every run, in order, through Fetch/Read/Write (or
// FetchBlock for runs with Block > 1). Runs with a non-positive count
// are skipped. On error the stream stops at the failing reference,
// with every earlier reference fully applied, like the equivalent loop.
func (c *CPU) AccessBatch(runs []arch.RefRun) error {
	fast := c.batchable()
	for i := range runs {
		r := &runs[i]
		if r.Count <= 0 {
			continue
		}
		var err error
		switch {
		case !fast:
			err = c.expandRun(r)
		case r.Kind == arch.AccessFetch && r.Block > 1:
			err = c.fetchBlockRun(r)
		default:
			err = c.refRunFused(r)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// expandRun is the scalar reference semantics of one run: the loop the
// encoding replaced, calling the unchanged per-reference entry points.
func (c *CPU) expandRun(r *arch.RefRun) error {
	va := r.VA
	for i := 0; i < r.Count; i++ {
		var err error
		if r.Kind == arch.AccessFetch && r.Block > 1 {
			err = c.FetchBlock(va, r.Block)
		} else {
			err = c.access(va, r.Kind)
		}
		if err != nil {
			return err
		}
		va += r.Stride
	}
	return nil
}

// fetchBlockRun executes a run of page visits. FetchBlock has its own
// fused fast path (one peek, one committed double-hit, one cache run),
// so the per-visit loop is already batched where it counts; the visits
// themselves cannot fuse further because each one re-decides its page.
func (c *CPU) fetchBlockRun(r *arch.RefRun) error {
	va := r.VA
	for i := 0; i < r.Count; i++ {
		if err := c.FetchBlock(va, r.Block); err != nil {
			return err
		}
		va += r.Stride
	}
	return nil
}

// refRunFused executes a run of single references. TLB-hit spans are
// resolved by one LookupRun probe each — a large-page entry carries a
// page-stride run across thousands of iterations — and their base
// instruction costs and cache stalls accumulate in locals, flushed once
// per run and before every scalar fallback so a faulting reference
// observes exactly the scalar-path state.
func (c *CPU) refRunFused(r *arch.RefRun) error {
	ctx := c.cur
	if ctx == nil {
		return c.access(r.VA, r.Kind) // scalar path reports the error
	}
	micro := c.MicroI
	fetch := r.Kind == arch.AccessFetch
	if !fetch {
		micro = c.MicroD
	}

	var instrs, stall uint64
	flush := func() {
		if instrs == 0 && stall == 0 {
			return
		}
		ctx.Stats.Instructions += instrs
		if fetch {
			ctx.Stats.ICacheStallCycles += stall
		} else {
			ctx.Stats.DCacheStallCycles += stall
		}
		c.charge(int(instrs)*c.Costs.BaseInstr + int(stall))
		instrs, stall = 0, 0
	}

	va := r.VA
	remaining := r.Count
	for remaining > 0 {
		n, e := micro.LookupRun(va, r.Stride, remaining, ctx.ASID, ctx.DACR, r.Kind)
		if n == 0 {
			// Micro-TLB miss or fault at va: hand this one reference to the
			// scalar path (main-TLB probe, walk, fault handling, retries),
			// with the fast path's accumulated costs flushed first.
			flush()
			if err := c.access(va, r.Kind); err != nil {
				return err
			}
			va += r.Stride
			remaining--
			continue
		}
		instrs += uint64(n)
		frame, flags := e.Frame(), e.Flags()
		if fetch {
			l1 := c.Caches.L1I
			for i := 0; i < n; i++ {
				if lat := l1.Access(c.physAddr(frame, flags, va)); lat > 1 {
					stall += uint64(lat - 1)
				}
				va += r.Stride
			}
		} else {
			l1 := c.Caches.L1D
			for i := 0; i < n; i++ {
				if lat := l1.Access(c.physAddr(frame, flags, va)); lat > 1 {
					stall += uint64(lat - 1)
				}
				va += r.Stride
			}
		}
		remaining -= n
	}
	if fetch {
		c.lastFetchVA = va - r.Stride
	}
	flush()
	return nil
}
