// Package imagestore persists checkpoint images across process runs.
//
// Booting the shared Android prefix dominates simulator start-up; within
// one process the checkpoint layer amortizes it by forking a cached
// proto image, but every fresh process pays the boot again. This store
// writes the proto image to disk once — content-addressed by the same
// canonical key checkpoint.Cache uses — and later processes admit it
// with a memory-mapped load: a checksum pass, a JSON decode of the small
// state, and in-place slice casts over the mapped file for the bulky
// arrays (frame table, PTEs, page-cache pages, cache arrays).
//
// Trust model: stored files are an optimization, never an authority. A
// load re-derives the machine's fingerprint with the same machinery
// checkpoint uses for clone verification and compares it against the
// fingerprint captured at save time; any mismatch — corruption below
// the checksum's notice, a stale encoding, a struct-layout drift —
// discards the file and falls back to a cold boot, which then rewrites
// it. Writes go through a temp file and rename, so concurrent processes
// racing on one directory see either no file or a complete one.
package imagestore

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/checkpoint"
	"repro/internal/workload"
)

// Store is an on-disk image store rooted at one directory. It
// implements checkpoint.ImageStore; misses and failed loads are
// indistinguishable to the caller, which boots cold either way.
type Store struct {
	dir string
	u   *workload.Universe
}

var _ checkpoint.ImageStore = (*Store)(nil)

// Open opens (creating if needed) the store rooted at dir, serving
// images booted from universe u. It errors on platforms whose struct
// layout the format cannot represent; callers should treat an error as
// "run without a store", not as fatal.
func Open(dir string, u *workload.Universe) (*Store, error) {
	if dir == "" {
		return nil, os.ErrInvalid
	}
	if err := layoutOK(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Store{dir: dir, u: u}, nil
}

// DefaultDir is the conventional store location under the user's cache
// directory ("" if the platform defines none).
func DefaultDir() string {
	base, err := os.UserCacheDir()
	if err != nil {
		return ""
	}
	return filepath.Join(base, "satsim", "imagestore")
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// fileName addresses a key's image: the hex SHA-256 of the full
// canonical key. The key itself is stored in the file's metadata and
// checked on load, so a hash collision degrades to a miss, never to a
// wrong image.
func fileName(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:]) + ".img"
}

// Load returns the stored image for key, or reports a miss. Any defect
// in the stored file — bad checksum, stale version, foreign layout,
// failed fingerprint check — removes the file and reports a miss. On a
// hit the image's big arrays alias a file mapping that stays alive for
// the rest of the process.
func (s *Store) Load(key string) (*checkpoint.Image, bool) {
	path := filepath.Join(s.dir, fileName(key))
	data, mapped, err := mapFile(path)
	if err != nil {
		// A present but unmappable file (zero-length, unreadable) can
		// never load and would make Save skip the slot forever; clear it.
		if !os.IsNotExist(err) {
			_ = os.Remove(path)
		}
		return nil, false
	}
	img, storedKey, err := decodeImage(data, s.u)
	if err != nil || storedKey != key {
		unmapFile(data, mapped)
		_ = os.Remove(path)
		return nil, false
	}
	return img, true
}

// Save writes img under key. Best-effort: failures leave the store as
// it was and cost only the boot the caller already paid. If the key is
// already stored the existing file wins — with content addressing both
// writers hold equivalent images.
func (s *Store) Save(key string, img *checkpoint.Image) {
	path := filepath.Join(s.dir, fileName(key))
	if _, err := os.Stat(path); err == nil {
		return
	}
	buf, err := encodeImage(key, img)
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(s.dir, ".img-*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(buf)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		_ = os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		_ = os.Remove(tmp.Name())
	}
}

// List returns the store's image file names in sorted order, so any
// iteration over the store is deterministic regardless of directory
// enumeration order.
func (s *Store) List() ([]string, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".img" {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}
