// Tests for the persistent image store: a stored image round-trips to a
// machine byte-identical with a fresh boot, defective files of every
// kind come back as clean misses (never a panic, never a wrong
// machine), distinct architectures never collide, and the load fast
// path stays allocation-free where the format promises it.

package imagestore

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/android"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/workload"

	_ "repro/internal/arch/sv39"
)

func bootSys(t testing.TB, opts android.Options) *android.System {
	t.Helper()
	sys, err := android.BootOpts(core.SharedPTP(), android.LayoutOriginal, workload.DefaultUniverse(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func bootKey(opts android.Options) string {
	return checkpoint.Key(core.SharedPTP(), android.LayoutOriginal, workload.DefaultUniverse(), opts)
}

func openStore(t testing.TB) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), workload.DefaultUniverse())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// exercise launches, runs and exits one app — the mutation mix the
// behavioral equivalence tests replay on machines of both origins.
func exercise(t *testing.T, sys *android.System) {
	t.Helper()
	prof := workload.BuildProfile(sys.Universe, workload.Suite()[0])
	app, _, err := sys.LaunchApp(prof, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.Run(); err != nil {
		t.Fatal(err)
	}
	sys.Kernel.Exit(app.Proc)
}

func TestRoundTrip(t *testing.T) {
	store := openStore(t)
	img := checkpoint.Capture(bootSys(t, android.Options{}))
	key := bootKey(android.Options{})

	if _, ok := store.Load(key); ok {
		t.Fatal("empty store reported a hit")
	}
	store.Save(key, img)
	loaded, ok := store.Load(key)
	if !ok {
		t.Fatal("store missed the image it just saved")
	}
	if loaded.Fingerprint() != img.Fingerprint() {
		t.Error("loaded image fingerprint differs from the saved one")
	}

	// Forks of the loaded image must behave byte-identically to forks of
	// the original: same starting fingerprint, same state after running
	// the same workload.
	a, b := img.Fork(), loaded.Fork()
	if checkpoint.Capture(a).Fingerprint() != checkpoint.Capture(b).Fingerprint() {
		t.Fatal("fork of loaded image differs from fork of original")
	}
	exercise(t, a)
	exercise(t, b)
	if checkpoint.Capture(a).Fingerprint() != checkpoint.Capture(b).Fingerprint() {
		t.Error("identical workloads diverged between loaded-image and original forks")
	}
	// And running the loaded image's fork left the loaded image pristine.
	if loaded.Fingerprint() != img.Fingerprint() {
		t.Error("running a fork mutated the loaded image")
	}
}

// TestCrossArch pins the key/arch invariant: images of different MMU
// architectures live under distinct keys, never shadow each other, and
// each round-trips to its own machine.
func TestCrossArch(t *testing.T) {
	armOpts := android.Options{}
	svOpts := android.Options{Arch: "sv39"}
	armKey, svKey := bootKey(armOpts), bootKey(svOpts)
	if armKey == svKey {
		t.Fatal("armv7 and sv39 boots share a cache key")
	}
	if fileName(armKey) == fileName(svKey) {
		t.Fatal("armv7 and sv39 keys hash to one store file")
	}

	store := openStore(t)
	arm := checkpoint.Capture(bootSys(t, armOpts))
	sv := checkpoint.Capture(bootSys(t, svOpts))
	store.Save(armKey, arm)
	store.Save(svKey, sv)
	if names, err := store.List(); err != nil || len(names) != 2 {
		t.Fatalf("List() = %v, %v; want two images", names, err)
	}
	for _, tc := range []struct {
		name string
		key  string
		img  *checkpoint.Image
	}{{"armv7", armKey, arm}, {"sv39", svKey, sv}} {
		loaded, ok := store.Load(tc.key)
		if !ok {
			t.Fatalf("%s image missing from store", tc.name)
		}
		if loaded.Fingerprint() != tc.img.Fingerprint() {
			t.Errorf("%s image round-trip changed the machine", tc.name)
		}
	}
}

// TestCacheIntegration drives the store through checkpoint.Cache: a
// first process boots cold and writes back, a second process (a fresh
// cache over the same directory) admits the stored image without
// booting.
func TestCacheIntegration(t *testing.T) {
	store := openStore(t)
	key := bootKey(android.Options{})
	boots := 0
	boot := func() (*android.System, error) {
		boots++
		return android.BootOpts(core.SharedPTP(), android.LayoutOriginal, workload.DefaultUniverse(), android.Options{})
	}

	cold := checkpoint.NewCache()
	cold.SetStore(store)
	coldImg, err := cold.Image(key, boot)
	if err != nil {
		t.Fatal(err)
	}
	if boots != 1 {
		t.Fatalf("cold cache booted %d times, want 1", boots)
	}

	warm := checkpoint.NewCache()
	warm.SetStore(store)
	warmImg, err := warm.Image(key, boot)
	if err != nil {
		t.Fatal(err)
	}
	if boots != 1 {
		t.Errorf("warm cache booted again instead of loading from the store")
	}
	if warmImg.Fingerprint() != coldImg.Fingerprint() {
		t.Error("warm-started image differs from the cold boot")
	}
}

// TestCorruptionRejected flips one bit at offsets spread across every
// region of a stored file — magic, version, checksum, directory, JSON
// metadata, each binary section — and truncates it at a spread of
// lengths. Every defect must come back as a clean miss (the loader may
// never panic or admit a wrong machine), the bad file must be removed,
// and the caller's cold-boot fallback must still produce the original
// machine.
func TestCorruptionRejected(t *testing.T) {
	store := openStore(t)
	img := checkpoint.Capture(bootSys(t, android.Options{}))
	key := bootKey(android.Options{})
	good, err := encodeImage(key, img)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(store.Dir(), fileName(key))
	fresh := img.Fingerprint()

	check := func(t *testing.T, mutated []byte) {
		t.Helper()
		if err := os.WriteFile(path, mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("loader panicked on defective file: %v", r)
			}
		}()
		if _, ok := store.Load(key); ok {
			t.Fatal("loader admitted a defective file")
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Error("defective file not removed after rejection")
		}
	}

	// One flipped bit at ~64 offsets spread across the whole file, plus
	// the first and last byte of every header field region.
	offsets := []int{0, 7, 8, 11, 12, 15, 16, 23, 24, 27, 28, 31, 32, headerSize - 1, len(good) - 1}
	for off := headerSize; off < len(good); off += (len(good)-headerSize)/64 + 1 {
		offsets = append(offsets, off)
	}
	for _, off := range offsets {
		mutated := append([]byte(nil), good...)
		mutated[off] ^= 0x10
		t.Run("", func(t *testing.T) { check(t, mutated) })
	}
	for _, n := range []int{0, 1, headerSize - 1, headerSize, len(good) / 3, len(good) - 1} {
		t.Run("", func(t *testing.T) { check(t, good[:n:n]) })
	}

	// A future format version must be rejected even with a valid
	// checksum over the rest of the file.
	versionBumped := append([]byte(nil), good...)
	versionBumped[8]++
	t.Run("version", func(t *testing.T) { check(t, versionBumped) })

	// A valid file stored under the wrong name (key mismatch) is also
	// rejected: content addressing may never serve another boot's image.
	t.Run("wrong-key", func(t *testing.T) {
		otherKey := bootKey(android.Options{CPUs: 4})
		if err := os.WriteFile(filepath.Join(store.Dir(), fileName(otherKey)), good, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := store.Load(otherKey); ok {
			t.Fatal("loader served an image stored under a different key")
		}
	})

	// After all those rejections the fallback path is a cold boot —
	// byte-identical to the machine the file once held.
	if got := checkpoint.Capture(bootSys(t, android.Options{})).Fingerprint(); got != fresh {
		t.Error("cold-boot fallback differs from the originally stored machine")
	}
}

// TestListSorted pins deterministic store iteration: List returns image
// names in sorted order regardless of directory enumeration or creation
// order, and ignores foreign files. The fixture files were deliberately
// created out of name order.
func TestListSorted(t *testing.T) {
	dir := t.TempDir()
	ents, err := os.ReadDir("testdata/listing")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join("testdata/listing", e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	store, err := Open(dir, workload.DefaultUniverse())
	if err != nil {
		t.Fatal(err)
	}
	names, err := store.List()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"00-but-sorts-first.img", "mm-middle.img", "zz-last-created.img"}
	if len(names) != len(want) {
		t.Fatalf("List() = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("List() = %v, want %v", names, want)
		}
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open("", workload.DefaultUniverse()); err == nil {
		t.Error("Open(\"\") succeeded; want error")
	}
}

// TestParseHeaderZeroAlloc pins the mmap fast path's promise: header
// validation and section-directory extraction allocate nothing, so a
// warm load's overhead is the checksum pass plus the JSON metadata.
func TestParseHeaderZeroAlloc(t *testing.T) {
	img := checkpoint.Capture(bootSys(t, android.Options{}))
	buf, err := encodeImage(bootKey(android.Options{}), img)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := parseHeader(buf); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("parseHeader allocates %.0f times per call, want 0", allocs)
	}
}
