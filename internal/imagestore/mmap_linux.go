//go:build linux

package imagestore

import (
	"os"
	"syscall"
)

// mapFile maps path read-write, MAP_PRIVATE: the restored machine's
// copy-on-write aliases may be written through their own page faults,
// and a private mapping keeps every such write out of the file. The
// returned mapped flag tells unmapFile whether data came from mmap.
func mapFile(path string) (data []byte, mapped bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, false, err
	}
	size := fi.Size()
	if size <= 0 || size != int64(int(size)) {
		return nil, false, os.ErrInvalid
	}
	data, err = syscall.Mmap(int(f.Fd()), 0, int(size),
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}

// unmapFile releases a mapping made by mapFile. Only called on decode
// failure: a successfully loaded image aliases the mapping for life.
func unmapFile(data []byte, mapped bool) {
	if mapped {
		_ = syscall.Munmap(data)
	}
}
