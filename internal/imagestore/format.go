// Image file format: a fixed header, a section directory, and nine
// 8-byte-aligned sections. The bulky machine state — frame metadata,
// PTE arrays, page-table slot arrays, page-cache page arrays, cache
// line/recency arrays — is stored as flat binary images of the
// in-memory structs, so a load is a handful of bounds checks plus
// in-place slice casts over the mapped file; everything small (the
// snapshot scalars, region lists, TLB entries) travels as one JSON
// document in the META section.
//
//	[0:8]   magic "SATIMG01"
//	[8:12]  format version (uint32)
//	[12:16] endianness tag 0x01020304, written natively
//	[16:24] crc32-Castagnoli over everything after this field (upper
//	        32 bits zero); random corruption below its notice is still
//	        caught by the fingerprint check after decoding
//	[24:28] section count (uint32, == numSections)
//	[28:32] layout hash: sizes/offsets of the cast struct types
//	[32:..] directory: {off, len uint64} per section, offsets absolute
//
// The format is tied to the writing platform's struct layout (the
// layout hash and endianness tag reject foreign files); layoutOK
// additionally disables the store entirely on platforms where the cast
// types are not the layout this format assumes.
//
// Version-bump procedure: any change to the section set, the META
// schema, a cast struct, or the meaning of stored state must increment
// FormatVersion (see DESIGN.md); older files then fail the header check
// and are removed lazily, forcing a cold boot and rewrite.

package imagestore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"unsafe"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/pagetable"
	"repro/internal/vm"
)

// FormatVersion is the on-disk format generation. Bump it on any
// incompatible change; stored images of other versions are discarded.
const FormatVersion = 1

const magic = "SATIMG01"

const endianTag uint32 = 0x01020304

// Section indices. Order is fixed; the directory is indexed by these.
const (
	secMeta      = iota // JSON metaDoc
	secFrames           // []mem.Frame, the whole physical frame table
	secFreeList         // []arch.FrameNum, allocator free list (LIFO order)
	secPTEs             // []pagetable.PTE, all leaf tables at LeafEntries stride
	secPTSlots          // []pagetable.SlotSnapshot, NumSlots per process, PID order
	secFilePages        // []vm.FilePage, page-cache arrays back to back
	secCacheTags        // []uint32: L2 then per-CPU L1I, L1D tag arrays
	secCacheMRU         // []cache.MRUSnapshot, same order
	secCacheAge         // []uint64, same order
	numSections
)

const headerSize = 32 + numSections*16

// sectionRange locates one section in the file.
type sectionRange struct {
	Off, Len uint64
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// hostIsLittleEndian reports the running platform's byte order.
func hostIsLittleEndian() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}

// hostPutUint32 stores v in the platform's native byte order — how the
// endianness tag is written, so a cross-endian reader sees it reversed.
// Callers pass offsets into a heap-allocated header buffer; the
// alignment guard turns a miscomputed offset into a loud panic instead
// of a silently-working-on-x86, faulting-on-arm store.
func hostPutUint32(b []byte, v uint32) {
	_ = b[3]
	if uintptr(unsafe.Pointer(&b[0]))%unsafe.Alignof(v) != 0 {
		panic("imagestore: unaligned native uint32 store")
	}
	*(*uint32)(unsafe.Pointer(&b[0])) = v
}

// layoutHash folds the sizes and offsets of every struct the format
// casts in place into one word, so a file written under a different
// layout (another word size, field reordering after a refactor) is
// rejected by the header check before any cast happens.
func layoutHash() uint32 {
	var f mem.Frame
	var p pagetable.PTE
	var sl pagetable.SlotSnapshot
	var fp vm.FilePage
	var m cache.MRUSnapshot
	vals := []uintptr{
		unsafe.Sizeof(f), unsafe.Offsetof(f.Num), unsafe.Offsetof(f.Kind), unsafe.Offsetof(f.MapCount),
		unsafe.Sizeof(p), unsafe.Offsetof(p.Frame), unsafe.Offsetof(p.Flags), unsafe.Offsetof(p.Soft),
		unsafe.Sizeof(sl), unsafe.Offsetof(sl.Table), unsafe.Offsetof(sl.Domain), unsafe.Offsetof(sl.NeedCopy),
		unsafe.Sizeof(fp), unsafe.Offsetof(fp.Idx), unsafe.Offsetof(fp.Frame),
		unsafe.Sizeof(m), unsafe.Offsetof(m.Tag), unsafe.Offsetof(m.Tag2), unsafe.Offsetof(m.Way), unsafe.Offsetof(m.Way2),
	}
	h := uint32(2166136261)
	for _, v := range vals {
		h = (h ^ uint32(v)) * 16777619
	}
	return h
}

// layoutOK reports whether the running platform has the struct layout
// this format assumes. When it errors the store disables itself: images
// are neither written nor read, and everything boots cold.
func layoutOK() error {
	if !hostIsLittleEndian() {
		return fmt.Errorf("imagestore: big-endian host not supported")
	}
	if s := unsafe.Sizeof(mem.Frame{}); s != 16 {
		return fmt.Errorf("imagestore: mem.Frame is %d bytes, format wants 16", s)
	}
	if s := unsafe.Sizeof(pagetable.PTE{}); s != 8 {
		return fmt.Errorf("imagestore: pagetable.PTE is %d bytes, format wants 8", s)
	}
	if s := unsafe.Sizeof(pagetable.SlotSnapshot{}); s != 8 {
		return fmt.Errorf("imagestore: pagetable.SlotSnapshot is %d bytes, format wants 8", s)
	}
	if s := unsafe.Sizeof(vm.FilePage{}); s != 8 {
		return fmt.Errorf("imagestore: vm.FilePage is %d bytes, format wants 8", s)
	}
	if s := unsafe.Sizeof(cache.MRUSnapshot{}); s != 16 {
		return fmt.Errorf("imagestore: cache.MRUSnapshot is %d bytes, format wants 16", s)
	}
	return nil
}

// parseHeader validates the fixed header and checksum and returns the
// section directory. It allocates nothing (the benchmark pins this): a
// warm-path load pays a crc64 pass over the file plus bounds checks.
func parseHeader(data []byte) (dir [numSections]sectionRange, err error) {
	if len(data) < headerSize {
		return dir, fmt.Errorf("imagestore: file is %d bytes, header needs %d", len(data), headerSize)
	}
	if string(data[0:8]) != magic {
		return dir, fmt.Errorf("imagestore: bad magic %q", data[0:8])
	}
	le := binary.LittleEndian
	if v := le.Uint32(data[8:12]); v != FormatVersion {
		return dir, fmt.Errorf("imagestore: format version %d, want %d", v, FormatVersion)
	}
	// The tag was written natively; reading it with the host's order must
	// give it back, so a cross-endian file mismatches. The mapping base
	// is page-aligned in practice, but data may also be a plain read
	// fallback buffer, so prove the 4-byte alignment before the native
	// read rather than assume it.
	if uintptr(unsafe.Pointer(&data[12]))%unsafe.Alignof(endianTag) != 0 {
		return dir, fmt.Errorf("imagestore: header base misaligned for native tag read")
	}
	if tag := *(*uint32)(unsafe.Pointer(&data[12])); tag != endianTag {
		return dir, fmt.Errorf("imagestore: endianness tag %#x, want %#x", tag, endianTag)
	}
	if sum := le.Uint64(data[16:24]); sum != uint64(crc32.Checksum(data[24:], crcTable)) {
		return dir, fmt.Errorf("imagestore: checksum mismatch")
	}
	if n := le.Uint32(data[24:28]); n != numSections {
		return dir, fmt.Errorf("imagestore: %d sections, want %d", n, numSections)
	}
	if h := le.Uint32(data[28:32]); h != layoutHash() {
		return dir, fmt.Errorf("imagestore: struct layout hash %#x, want %#x", h, layoutHash())
	}
	for i := 0; i < numSections; i++ {
		off := le.Uint64(data[32+i*16:])
		n := le.Uint64(data[32+i*16+8:])
		if off%8 != 0 {
			return dir, fmt.Errorf("imagestore: section %d misaligned at %d", i, off)
		}
		if off < headerSize || off > uint64(len(data)) || n > uint64(len(data))-off {
			return dir, fmt.Errorf("imagestore: section %d spans [%d,%d) beyond %d bytes", i, off, off+n, len(data))
		}
		dir[i] = sectionRange{Off: off, Len: n}
	}
	return dir, nil
}

// bytesOf reinterprets a struct slice as its raw bytes.
func bytesOf[T any](s []T) []byte {
	if len(s) == 0 {
		return nil
	}
	var t T
	return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(s))), uintptr(len(s))*unsafe.Sizeof(t))
}

// castSlice reinterprets one section's bytes as a struct slice, in
// place: no copy, the result aliases data. The byte length must be an
// exact multiple of the element size and the base must be aligned for
// it (section offsets are 8-aligned and the mapping base is at least
// 8-aligned, so this only fails on corrupt directories).
func castSlice[T any](data []byte, r sectionRange, what string) ([]T, error) {
	var t T
	size := unsafe.Sizeof(t)
	if uintptr(r.Len)%size != 0 {
		return nil, fmt.Errorf("imagestore: %s section is %d bytes, not a multiple of %d", what, r.Len, size)
	}
	n := uintptr(r.Len) / size
	if n == 0 {
		return nil, nil
	}
	base := unsafe.Pointer(unsafe.SliceData(data[r.Off:]))
	if uintptr(base)%unsafe.Alignof(t) != 0 {
		return nil, fmt.Errorf("imagestore: %s section base misaligned", what)
	}
	return unsafe.Slice((*T)(base), n), nil
}
