package imagestore

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"

	"repro/internal/android"
	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/pagetable"
	"repro/internal/vm"
)

// fileRange locates one file's page array inside the FILEPAGES section,
// in FilePage elements relative to the section start.
type fileRange struct {
	Off, N int
}

// metaDoc is the JSON document of the META section: the full cache key
// (collision guard for the hashed file name), a digest of the image
// fingerprint the loader verifies before admission (the full text runs
// to megabytes; the loader re-renders it from the restored machine and
// compares digests), the machine snapshot with its bulky arrays
// stripped into the binary sections, and the placement records needed
// to stitch them back.
type metaDoc struct {
	Key            string
	FingerprintSHA string
	TableFrames    []arch.FrameNum
	FileRanges     []fileRange
	System         android.SystemSnapshot
}

// fingerprintDigest is the stored form of a machine fingerprint.
func fingerprintDigest(fp string) string {
	sum := sha256.Sum256([]byte(fp))
	return hex.EncodeToString(sum[:])
}

// cacheSnapshots lists the machine's cache levels in the fixed section
// order: the shared L2, then each core's L1I and L1D. Encoder and
// decoder must agree on this order; the arrays are stored back to back
// with lengths derived from each level's Config.
func cacheSnapshots(k *core.KernelSnapshot) []*cache.Snapshot {
	cs := make([]*cache.Snapshot, 0, 1+2*len(k.CPUs))
	cs = append(cs, &k.L2)
	for i := range k.CPUs {
		cs = append(cs, &k.CPUs[i].L1I, &k.CPUs[i].L1D)
	}
	return cs
}

// encodeImage renders the image as one image-file byte buffer.
func encodeImage(key string, img *checkpoint.Image) ([]byte, error) {
	snap, files, tables := img.Proto().SnapshotState()
	m, ok := arch.Lookup(snap.Kernel.Arch)
	if !ok {
		return nil, fmt.Errorf("imagestore: unknown architecture %q", snap.Kernel.Arch)
	}
	stride := m.Geometry().LeafEntries

	meta := metaDoc{Key: key, FingerprintSHA: fingerprintDigest(img.Fingerprint())}

	// Strip the bulky arrays out of the snapshot into flat sections; the
	// remaining snapshot is the META document.
	frames := snap.Kernel.Phys.Frames
	snap.Kernel.Phys.Frames = nil
	freeList := snap.Kernel.Phys.FreeList
	snap.Kernel.Phys.FreeList = nil

	var tags []uint32
	var mrus []cache.MRUSnapshot
	var ages []uint64
	for _, cs := range cacheSnapshots(&snap.Kernel) {
		tags = append(tags, cs.Tags...)
		mrus = append(mrus, cs.MRU...)
		ages = append(ages, cs.Age...)
		cs.Tags, cs.MRU, cs.Age = nil, nil, nil
	}

	var slots []pagetable.SlotSnapshot
	for i := range snap.Kernel.Procs {
		pt := &snap.Kernel.Procs[i].MM.PT
		slots = append(slots, pt.Slots...)
		pt.Slots = nil
	}

	ptes := make([]pagetable.PTE, 0, len(tables)*stride)
	meta.TableFrames = make([]arch.FrameNum, len(tables))
	for i, t := range tables {
		p := t.SnapshotPTEs()
		if len(p) != stride {
			return nil, fmt.Errorf("imagestore: leaf table %d has %d PTEs, geometry wants %d", i, len(p), stride)
		}
		ptes = append(ptes, p...)
		meta.TableFrames[i] = t.Frame
	}

	var filePages []vm.FilePage
	meta.FileRanges = make([]fileRange, len(files))
	for i, f := range files {
		pg := f.SnapshotPages()
		meta.FileRanges[i] = fileRange{Off: len(filePages), N: len(pg)}
		filePages = append(filePages, pg...)
	}

	meta.System = snap
	metaJSON, err := json.Marshal(&meta)
	if err != nil {
		return nil, fmt.Errorf("imagestore: encoding metadata: %w", err)
	}

	sections := [numSections][]byte{
		secMeta:      metaJSON,
		secFrames:    bytesOf(frames),
		secFreeList:  bytesOf(freeList),
		secPTEs:      bytesOf(ptes),
		secPTSlots:   bytesOf(slots),
		secFilePages: bytesOf(filePages),
		secCacheTags: bytesOf(tags),
		secCacheMRU:  bytesOf(mrus),
		secCacheAge:  bytesOf(ages),
	}

	// Lay the sections out 8-aligned in index order behind the header.
	var dir [numSections]sectionRange
	off := uint64(headerSize)
	for i, s := range sections {
		off = (off + 7) &^ 7
		dir[i] = sectionRange{Off: off, Len: uint64(len(s))}
		off += uint64(len(s))
	}
	buf := make([]byte, (off+7)&^7)
	le := binary.LittleEndian
	copy(buf[0:8], magic)
	le.PutUint32(buf[8:12], FormatVersion)
	hostPutUint32(buf[12:16], endianTag)
	le.PutUint32(buf[24:28], numSections)
	le.PutUint32(buf[28:32], layoutHash())
	for i, r := range dir {
		le.PutUint64(buf[32+i*16:], r.Off)
		le.PutUint64(buf[32+i*16+8:], r.Len)
	}
	for i, s := range sections {
		copy(buf[dir[i].Off:], s)
	}
	le.PutUint64(buf[16:24], uint64(crc32.Checksum(buf[24:], crcTable)))
	return buf, nil
}
