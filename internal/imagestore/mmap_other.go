//go:build !linux

package imagestore

import "os"

// mapFile on platforms without the mmap shim reads the whole file into
// an 8-aligned buffer (backed by []uint64, since castSlice needs the
// base aligned for every cast type). Loads still work; they just pay a
// copy of the file instead of a mapping.
func mapFile(path string) (data []byte, mapped bool, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, false, err
	}
	words := make([]uint64, (len(raw)+7)/8)
	buf := bytesOf(words)[:len(raw)]
	copy(buf, raw)
	return buf, false, nil
}

func unmapFile(data []byte, mapped bool) {}
