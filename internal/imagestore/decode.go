package imagestore

import (
	"encoding/json"
	"fmt"

	"repro/internal/android"
	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/checkpoint"
	"repro/internal/mem"
	"repro/internal/pagetable"
	"repro/internal/vm"
	"repro/internal/workload"
)

// section returns one section's bytes; parseHeader has already bounds-
// checked the range against the data.
func section(data []byte, r sectionRange) []byte {
	return data[r.Off : r.Off+r.Len : r.Off+r.Len]
}

// validCacheConfig pre-checks the invariants cache.New would panic on,
// so a file with fabricated metadata is rejected with an error instead.
func validCacheConfig(c cache.Config) error {
	if c.Size <= 0 || c.LineSize <= 0 || c.Assoc <= 0 || c.Assoc > 8 {
		return fmt.Errorf("imagestore: cache %q has impossible config %+v", c.Name, c)
	}
	if c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("imagestore: cache %q line size %d not a power of two", c.Name, c.LineSize)
	}
	nSets := c.Size / (c.LineSize * c.Assoc)
	if nSets <= 0 || nSets&(nSets-1) != 0 {
		return fmt.Errorf("imagestore: cache %q set count %d not a positive power of two", c.Name, nSets)
	}
	return nil
}

// decodeImage reconstructs the stored machine from one image file's
// bytes, verifying structure at every step and finally the stored
// fingerprint against the rebuilt machine. The big arrays of the result
// alias data: the caller must keep the mapping alive for the life of
// the image, and may only unmap it when decoding fails.
func decodeImage(data []byte, u *workload.Universe) (*checkpoint.Image, string, error) {
	dir, err := parseHeader(data)
	if err != nil {
		return nil, "", err
	}
	var meta metaDoc
	if err := json.Unmarshal(section(data, dir[secMeta]), &meta); err != nil {
		return nil, "", fmt.Errorf("imagestore: decoding metadata: %w", err)
	}
	snap := &meta.System
	m, ok := arch.Lookup(snap.Kernel.Arch)
	if !ok {
		return nil, "", fmt.Errorf("imagestore: image for unknown architecture %q", snap.Kernel.Arch)
	}
	geo := m.Geometry()

	// Physical frame table and allocator free list.
	frames, err := castSlice[mem.Frame](data, dir[secFrames], "frame")
	if err != nil {
		return nil, "", err
	}
	if len(frames) != snap.Kernel.Phys.NFrames {
		return nil, "", fmt.Errorf("imagestore: frame section holds %d frames, metadata says %d",
			len(frames), snap.Kernel.Phys.NFrames)
	}
	freeList, err := castSlice[arch.FrameNum](data, dir[secFreeList], "free-list")
	if err != nil {
		return nil, "", err
	}
	snap.Kernel.Phys.Frames = frames
	snap.Kernel.Phys.FreeList = freeList
	phys, err := mem.Restore(snap.Kernel.Phys)
	if err != nil {
		return nil, "", err
	}

	// Cache arrays, carved in the fixed level order.
	tags, err := castSlice[uint32](data, dir[secCacheTags], "cache-tag")
	if err != nil {
		return nil, "", err
	}
	mrus, err := castSlice[cache.MRUSnapshot](data, dir[secCacheMRU], "cache-mru")
	if err != nil {
		return nil, "", err
	}
	ages, err := castSlice[uint64](data, dir[secCacheAge], "cache-age")
	if err != nil {
		return nil, "", err
	}
	for _, cs := range cacheSnapshots(&snap.Kernel) {
		if err := validCacheConfig(cs.Config); err != nil {
			return nil, "", err
		}
		nSets := cs.Config.Size / (cs.Config.LineSize * cs.Config.Assoc)
		nTags := nSets * cs.Config.Assoc
		if nTags > len(tags) || nSets > len(mrus) || nSets > len(ages) {
			return nil, "", fmt.Errorf("imagestore: cache sections exhausted at level %q", cs.Config.Name)
		}
		cs.Tags, tags = tags[:nTags:nTags], tags[nTags:]
		cs.MRU, mrus = mrus[:nSets:nSets], mrus[nSets:]
		cs.Age, ages = ages[:nSets:nSets], ages[nSets:]
	}
	if len(tags) != 0 || len(mrus) != 0 || len(ages) != 0 {
		return nil, "", fmt.Errorf("imagestore: %d tags, %d MRU registers, %d age words left over",
			len(tags), len(mrus), len(ages))
	}

	// Page-table slot arrays: geo.NumSlots() per process, PID order.
	slots, err := castSlice[pagetable.SlotSnapshot](data, dir[secPTSlots], "slot")
	if err != nil {
		return nil, "", err
	}
	nSlots := geo.NumSlots()
	if len(slots) != len(snap.Kernel.Procs)*nSlots {
		return nil, "", fmt.Errorf("imagestore: slot section holds %d entries for %d processes of %d",
			len(slots), len(snap.Kernel.Procs), nSlots)
	}
	for i := range snap.Kernel.Procs {
		snap.Kernel.Procs[i].MM.PT.Slots = slots[i*nSlots : (i+1)*nSlots : (i+1)*nSlots]
	}

	// Leaf page tables: one fixed-stride PTE run per table.
	ptes, err := castSlice[pagetable.PTE](data, dir[secPTEs], "PTE")
	if err != nil {
		return nil, "", err
	}
	stride := geo.LeafEntries
	if len(ptes) != len(meta.TableFrames)*stride {
		return nil, "", fmt.Errorf("imagestore: PTE section holds %d entries for %d tables of %d",
			len(ptes), len(meta.TableFrames), stride)
	}
	tables := make([]*pagetable.LeafTable, len(meta.TableFrames))
	for i, frame := range meta.TableFrames {
		run := ptes[i*stride : (i+1)*stride : (i+1)*stride]
		tables[i] = pagetable.RestoreLeafTable(frame, run, geo.EntryBytes)
	}

	// Page-cache files.
	filePages, err := castSlice[vm.FilePage](data, dir[secFilePages], "file-page")
	if err != nil {
		return nil, "", err
	}
	if len(meta.FileRanges) != len(snap.Files) {
		return nil, "", fmt.Errorf("imagestore: %d file ranges for %d files", len(meta.FileRanges), len(snap.Files))
	}
	files := make([]*vm.File, len(snap.Files))
	for i, fm := range snap.Files {
		r := meta.FileRanges[i]
		if r.Off < 0 || r.N < 0 || r.Off > len(filePages) || r.N > len(filePages)-r.Off {
			return nil, "", fmt.Errorf("imagestore: file %q pages [%d,%d) beyond %d stored pages",
				fm.Name, r.Off, r.Off+r.N, len(filePages))
		}
		files[i] = vm.RestoreFile(phys, fm.Name, fm.Size, filePages[r.Off:r.Off+r.N:r.Off+r.N])
	}

	sys, err := android.RestoreSystem(*snap, u, phys, files, tables)
	if err != nil {
		return nil, "", err
	}
	img := checkpoint.Adopt(sys)
	if got := fingerprintDigest(img.Fingerprint()); got != meta.FingerprintSHA {
		return nil, "", fmt.Errorf("imagestore: fingerprint mismatch: restored machine differs from the captured one")
	}
	return img, meta.Key, nil
}
