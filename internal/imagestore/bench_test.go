// BenchmarkImageLoad vs BenchmarkImageBoot is the store's reason to
// exist: admitting a stored image (mmap + checksum + JSON metadata +
// in-place casts + fingerprint verification) versus simulating the boot
// it replaces. BENCH_imagestore.json cites both.

package imagestore

import (
	"testing"

	"repro/internal/android"
	"repro/internal/checkpoint"
)

func BenchmarkImageBoot(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sys := bootSys(b, android.Options{})
		if sys == nil {
			b.Fatal("boot returned nil")
		}
	}
}

func BenchmarkImageLoad(b *testing.B) {
	store := openStore(b)
	key := bootKey(android.Options{})
	store.Save(key, checkpoint.Capture(bootSys(b, android.Options{})))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		img, ok := store.Load(key)
		if !ok {
			b.Fatal("store missed")
		}
		_ = img
	}
}
