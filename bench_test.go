// Benchmarks regenerating every table and figure of the paper's
// evaluation, the Section 3.1.3 ablations, and the core memory-management
// primitives. The experiment benchmarks share one session, so the
// expensive sweeps (launch, steady-state) are paid once by whichever
// benchmark runs first and reused by the rest — exactly how the paper
// derives several figures from one measurement campaign. Custom metrics
// report the headline result of each experiment next to the simulator's
// own ns/op.
package repro

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/android"
	"repro/internal/arch"
	"repro/internal/arch/armv7"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/tlb"
	"repro/internal/workload"
)

var (
	benchOnce    sync.Once
	benchSession *experiments.Session
)

func session() *experiments.Session {
	benchOnce.Do(func() {
		benchSession = experiments.New(experiments.Quick())
	})
	return benchSession
}

// --- One benchmark per table and figure -----------------------------------

func BenchmarkTable1UserKernelSplit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := session().Table1()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[0].UserPct, "user%")
	}
}

func BenchmarkFigure2PageBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := session().Figure2()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.AvgSharedPct, "shared%")
	}
}

func BenchmarkFigure3FetchBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := session().Figure3()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.AvgSharedPct, "shared%")
	}
}

func BenchmarkTable2Commonality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := session().Table2()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.AvgZygote, "zygote-overlap%")
	}
}

func BenchmarkFigure4Sparsity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := session().Figure4()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.AvgWasteFactor, "64KB/4KB")
	}
}

func BenchmarkTable3InheritedPTEs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := session().Table3()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Rows[0].Warm), "warm-PTEs")
	}
}

func BenchmarkTable4ZygoteFork(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := session().Table4()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Speedup, "fork-speedup")
	}
}

func BenchmarkFigure7LaunchTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := session().Figure7()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.SpeedupPctOriginal, "launch-speedup%")
	}
}

func BenchmarkFigure8IcacheStalls(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := session().Figure8()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.ReductionPctOriginal, "stall-reduction%")
	}
}

func BenchmarkFigure9LaunchCounters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := session().Figure9()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[2].FaultsNormPct, "shared-faults%")
	}
}

func BenchmarkFigure10FaultReduction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := session().Figure10()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.AvgReductionPct, "fault-reduction%")
	}
}

func BenchmarkFigure11PTPAllocation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := session().Figure11()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.AvgReductionOriginal, "ptp-reduction%")
	}
}

func BenchmarkFigure12SharedPTPs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := session().Figure12()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Avg2MB, "shared-2mb%")
	}
}

func BenchmarkFigure13IPCTLB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := session().Figure13()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.ClientImprovementPct, "client-improvement%")
	}
}

// --- Ablations (design tradeoffs of Section 3.1.3) ------------------------

func BenchmarkAblationStackSharing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := session().StackSharingAblation(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationCopyReferenced(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := session().CopyReferencedAblation(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationL1WriteProtect(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := session().L1WriteProtectAblation(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationLargePages(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := session().LargePageStudy(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFutureDomainMatch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := session().DomainMatchStudy(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFutureSchedulerGrouping(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := session().SchedulerGrouping(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := session().Scalability()
		if err != nil {
			b.Fatal(err)
		}
		last := r.Rows[len(r.Rows)-1]
		b.ReportMetric(float64(last.StockPTPKB)/float64(last.SharedPTPKB), "ptp-mem-ratio@32")
	}
}

func BenchmarkCachePollution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := session().CachePollution()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.StockPTELines)/float64(r.SharedPTELines), "pte-line-ratio")
	}
}

func BenchmarkSMPFourCores(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := session().SMP()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.StockFaults)/float64(r.SharedFaults), "fault-ratio")
	}
}

func BenchmarkChromeFamily(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := session().ChromeFamily()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.StockFaults-r.SharedFaults), "faults-eliminated")
	}
}

// --- Parallel sweep engine ------------------------------------------------

// benchSweepWorkers times one uncached sweep at several worker counts.
// Each iteration builds a fresh session so the sync.Once caches don't
// hide the sweep cost being measured.
func benchSweepWorkers(b *testing.B, run func(*experiments.Session) error) {
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := experiments.New(experiments.Quick())
				s.Parallel = w
				if err := run(s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkLaunchSweepWorkers(b *testing.B) {
	benchSweepWorkers(b, func(s *experiments.Session) error {
		_, err := s.Figure7()
		return err
	})
}

func BenchmarkSteadySweepWorkers(b *testing.B) {
	benchSweepWorkers(b, func(s *experiments.Session) error {
		_, err := s.Figure10()
		return err
	})
}

func BenchmarkMotivationSweepWorkers(b *testing.B) {
	benchSweepWorkers(b, func(s *experiments.Session) error {
		_, err := s.Table1()
		return err
	})
}

// --- Primitive micro-benchmarks -------------------------------------------

func benchBoot(b *testing.B, cfg core.Config) *android.System {
	b.Helper()
	sys, err := android.Boot(cfg, android.LayoutOriginal, session().Universe())
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

func BenchmarkZygoteForkStock(b *testing.B) {
	sys := benchBoot(b, core.Stock())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		child, err := sys.ZygoteFork("app")
		if err != nil {
			b.Fatal(err)
		}
		sys.Kernel.Exit(child)
	}
}

func BenchmarkZygoteForkShared(b *testing.B) {
	sys := benchBoot(b, core.SharedPTP())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		child, err := sys.ZygoteFork("app")
		if err != nil {
			b.Fatal(err)
		}
		sys.Kernel.Exit(child)
	}
}

func BenchmarkSoftPageFault(b *testing.B) {
	sys := benchBoot(b, core.Stock())
	child, err := sys.ZygoteFork("app")
	if err != nil {
		b.Fatal(err)
	}
	pages := session().Universe().ZygoteSet()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		va := sys.CodePageVA(pages[i%len(pages)])
		err := sys.Kernel.Run(child, func() error { return sys.Kernel.CPU.Fetch(va) })
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnshareOnWrite(b *testing.B) {
	sys := benchBoot(b, core.SharedPTP())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		child, err := sys.ZygoteFork("app")
		if err != nil {
			b.Fatal(err)
		}
		// First heap write: write fault in a shared PTP -> unshare + COW.
		err = sys.Kernel.Run(child, func() error {
			return sys.Kernel.CPU.Write(0x20000000)
		})
		if err != nil {
			b.Fatal(err)
		}
		sys.Kernel.Exit(child)
	}
}

func BenchmarkTLBLookupHit(b *testing.B) {
	t := tlb.New("bench", 128, armv7.PagesPerLargePage)
	dacr := armv7.StockDACR()
	for i := 0; i < 64; i++ {
		t.Insert(arch.VirtAddr(i)<<arch.PageShift, 1,
			arch.FrameNum(i), arch.PTEValid|arch.PTEUser|arch.PTEExec, armv7.DomainUser)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, r := t.Lookup(arch.VirtAddr(i%64)<<arch.PageShift, 1, dacr, arch.AccessFetch); r != tlb.Hit {
			b.Fatal("unexpected miss")
		}
	}
}

func BenchmarkCacheAccessHit(b *testing.B) {
	h := cache.DefaultHierarchy()
	h.Fetch(0x1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Fetch(0x1000)
	}
}

func BenchmarkProfileBuild(b *testing.B) {
	u := session().Universe()
	spec, err := workload.SpecByName("Adobe Reader")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		workload.BuildProfile(u, spec)
	}
}

func BenchmarkAppRunShared(b *testing.B) {
	sys := benchBoot(b, core.SharedPTP())
	prof := workload.BuildProfile(session().Universe(), workload.HelloWorldSpec())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		app, _, err := sys.LaunchApp(prof, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := app.Run(); err != nil {
			b.Fatal(err)
		}
		sys.Kernel.Exit(app.Proc)
	}
}
